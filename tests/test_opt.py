"""Tests for the optimizer substrate: SGD/Adam, CG solver, Neumann."""

import numpy as np
import pytest

from repro.opt import (
    Adam,
    CGResult,
    SGD,
    conjugate_gradient,
    make_optimizer,
    neumann_inverse_hvp,
)


def _quadratic(a, b):
    """Return grad function of 0.5 x^T A x - b^T x."""
    return lambda x: a @ x - b


class TestSGD:
    def test_converges_on_quadratic(self):
        a = np.diag([1.0, 2.0])
        b = np.array([1.0, 1.0])
        grad = _quadratic(a, b)
        opt = SGD(lr=0.3)
        x = np.zeros(2)
        for _ in range(200):
            x = opt.step(x, grad(x))
        np.testing.assert_allclose(x, np.linalg.solve(a, b), atol=1e-6)

    def test_momentum_faster_than_plain(self):
        a = np.diag([1.0, 30.0])  # ill-conditioned
        b = np.ones(2)
        grad = _quadratic(a, b)
        sol = np.linalg.solve(a, b)
        xs = {}
        for name, opt in (("plain", SGD(0.03)), ("mom", SGD(0.03, momentum=0.9))):
            x = np.zeros(2)
            for _ in range(100):
                x = opt.step(x, grad(x))
            xs[name] = np.linalg.norm(x - sol)
        assert xs["mom"] < xs["plain"]

    def test_reset_clears_velocity(self):
        opt = SGD(0.1, momentum=0.9)
        opt.step(np.zeros(2), np.ones(2))
        opt.reset()
        assert opt._velocity is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        a = np.diag([1.0, 100.0])
        b = np.array([1.0, 1.0])
        grad = _quadratic(a, b)
        opt = Adam(lr=0.1)
        x = np.zeros(2)
        for _ in range(500):
            x = opt.step(x, grad(x))
        np.testing.assert_allclose(x, np.linalg.solve(a, b), atol=1e-3)

    def test_first_step_is_lr_sized(self):
        opt = Adam(lr=0.1)
        x = opt.step(np.zeros(3), np.array([5.0, -2.0, 0.1]))
        np.testing.assert_allclose(np.abs(x), 0.1, atol=1e-6)

    def test_state_resets_on_shape_change(self):
        opt = Adam(lr=0.1)
        opt.step(np.zeros(2), np.ones(2))
        out = opt.step(np.zeros(3), np.ones(3))  # no crash, fresh state
        assert out.shape == (3,)

    def test_reset(self):
        opt = Adam(lr=0.1)
        opt.step(np.zeros(2), np.ones(2))
        opt.reset()
        assert opt._m is None and opt._t == 0


class TestFactory:
    def test_names(self):
        assert isinstance(make_optimizer("sgd", 0.1), SGD)
        assert isinstance(make_optimizer("adam", 0.1), Adam)
        mom = make_optimizer("momentum", 0.1)
        assert isinstance(mom, SGD) and mom.momentum == 0.9

    def test_unknown(self):
        with pytest.raises(KeyError):
            make_optimizer("lbfgs", 0.1)


class TestConjugateGradient:
    def _spd(self, n=6, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        return a @ a.T + n * np.eye(n)

    def test_solves_spd_system(self):
        a = self._spd()
        b = np.arange(6, dtype=float)
        res = conjugate_gradient(lambda v: a @ v, b, max_iter=50, tol=1e-12)
        assert res.converged
        np.testing.assert_allclose(res.x, np.linalg.solve(a, b), atol=1e-8)

    def test_exact_in_n_steps(self):
        a = self._spd(4, seed=1)
        b = np.ones(4)
        res = conjugate_gradient(lambda v: a @ v, b, max_iter=4, tol=1e-14)
        np.testing.assert_allclose(res.x, np.linalg.solve(a, b), atol=1e-8)

    def test_zero_rhs_immediate(self):
        a = self._spd(3)
        res = conjugate_gradient(lambda v: a @ v, np.zeros(3))
        assert res.converged and res.iterations == 0

    def test_warm_start_at_solution(self):
        a = self._spd(4, seed=2)
        b = np.ones(4)
        x_true = np.linalg.solve(a, b)
        res = conjugate_gradient(lambda v: a @ v, b, x0=x_true, max_iter=5)
        assert res.iterations == 0
        np.testing.assert_allclose(res.x, x_true)

    def test_damping_solves_damped_system(self):
        a = self._spd(4, seed=3)
        b = np.ones(4)
        res = conjugate_gradient(lambda v: a @ v, b, max_iter=50, damping=2.0, tol=1e-12)
        np.testing.assert_allclose(
            res.x, np.linalg.solve(a + 2.0 * np.eye(4), b), atol=1e-8
        )

    def test_negative_curvature_bails_gracefully(self):
        a = -np.eye(3)  # negative definite
        b = np.ones(3)
        res = conjugate_gradient(lambda v: a @ v, b, max_iter=10)
        assert np.all(np.isfinite(res.x))
        assert not res.converged

    def test_budget_respected(self):
        a = self._spd(20, seed=4)
        b = np.ones(20)
        res = conjugate_gradient(lambda v: a @ v, b, max_iter=3, tol=1e-16)
        assert res.iterations == 3


class TestNeumann:
    def test_matches_inverse_for_contractive_system(self):
        rng = np.random.default_rng(0)
        q = rng.standard_normal((4, 4))
        a = q @ q.T + 4 * np.eye(4)
        lr = 0.9 / np.linalg.eigvalsh(a).max()
        v = rng.standard_normal(4)
        approx = neumann_inverse_hvp(lambda p: a @ p, v, terms=800, lr=lr)
        np.testing.assert_allclose(approx, np.linalg.solve(a, v), atol=1e-6)

    def test_zero_terms_is_lr_scaled_identity(self):
        v = np.array([1.0, -2.0])
        out = neumann_inverse_hvp(lambda p: p * 100, v, terms=0, lr=0.05)
        np.testing.assert_allclose(out, 0.05 * v)

    def test_negative_terms_raises(self):
        with pytest.raises(ValueError):
            neumann_inverse_hvp(lambda p: p, np.ones(2), terms=-1, lr=0.1)

    def test_partial_sum_monotone_for_spd(self):
        """More terms -> closer to the true inverse application."""
        a = np.diag([1.0, 2.0, 4.0])
        v = np.ones(3)
        truth = np.linalg.solve(a, v)
        lr = 0.2
        errs = [
            np.linalg.norm(neumann_inverse_hvp(lambda p: a @ p, v, k, lr) - truth)
            for k in (1, 5, 25, 125)
        ]
        assert errs == sorted(errs, reverse=True)
