"""Tests for the shared optics cache: memoized grids, pupil-stack and
SOCS reuse across engine instances, and the hit/miss accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optics import (
    AbbeImaging,
    HopkinsImaging,
    OpticalConfig,
    SourceGrid,
    cache,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Each test observes a cold cache and leaves a clean one behind."""
    cache.clear()
    yield
    cache.clear()


@pytest.fixture()
def cfg() -> OpticalConfig:
    return OpticalConfig.preset("tiny")


class TestFreqMemoization:
    def test_freq_axes_cached_and_readonly(self, cfg):
        f1, _ = cfg.freq_axes()
        f2, _ = cfg.freq_axes()
        assert f1 is f2
        assert not f1.flags.writeable
        np.testing.assert_allclose(
            f1, np.fft.fftfreq(cfg.mask_size, d=cfg.pixel_nm)
        )

    def test_freq_grid_cached(self, cfg):
        fx1, fy1 = cfg.freq_grid()
        fx2, fy2 = cfg.freq_grid()
        assert fx1 is fx2 and fy1 is fy2
        assert not fx1.flags.writeable

    def test_equal_configs_share_entries(self):
        """Distinct but equal frozen configs key into the same entry."""
        a = OpticalConfig.preset("tiny")
        b = OpticalConfig.preset("tiny")
        assert a is not b
        assert a.freq_grid()[0] is b.freq_grid()[0]

    def test_loss_weight_changes_share_grids(self, cfg):
        """Keys cover only the physically relevant fields."""
        other = cfg.with_(gamma=1.0, eta=2.0)
        assert cfg.freq_grid()[0] is other.freq_grid()[0]

    def test_different_grids_differ(self, cfg):
        other = cfg.with_(mask_size=64)
        assert cfg.freq_axes()[0] is not other.freq_axes()[0]
        assert len(cfg.freq_axes()[0]) != len(other.freq_axes()[0])


class TestPupilStackReuse:
    def test_second_engine_reuses_pupil_stack(self, cfg):
        e1 = AbbeImaging(cfg)
        before = cache.stats()["pupil_stack"]
        e2 = AbbeImaging(cfg)
        after = cache.stats()["pupil_stack"]
        assert e1._pupil_stack is e2._pupil_stack
        assert e1._valid_index is e2._valid_index
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_cached_engine_instance_shared(self, cfg):
        assert cache.abbe_engine(cfg) is cache.abbe_engine(cfg)

    def test_defocus_keys_separately(self, cfg):
        e0 = AbbeImaging(cfg)
        ed = AbbeImaging(cfg, defocus_nm=100.0)
        assert e0._pupil_stack is not ed._pupil_stack

    def test_custom_source_grid_bypasses_cache(self, cfg):
        grid = SourceGrid.from_config(cfg)
        e1 = AbbeImaging(cfg, source_grid=grid)
        e2 = AbbeImaging(cfg)
        assert e1._pupil_stack is not e2._pupil_stack
        np.testing.assert_allclose(
            e1._pupil_stack.data, e2._pupil_stack.data, atol=0
        )


class TestSocsReuse:
    def test_second_hopkins_reuses_decomposition(self, cfg, tiny_source):
        h1 = HopkinsImaging(cfg, tiny_source, num_kernels=6)
        before = cache.stats()["socs"]
        h2 = HopkinsImaging(cfg, tiny_source, num_kernels=6)
        after = cache.stats()["socs"]
        assert h1._kernel_stack is h2._kernel_stack
        assert h1.weights is h2.weights
        assert h1.tcc_trace == h2.tcc_trace
        assert after["hits"] == before["hits"] + 1

    def test_truncation_order_keys_separately(self, cfg, tiny_source):
        h6 = HopkinsImaging(cfg, tiny_source, num_kernels=6)
        h8 = HopkinsImaging(cfg, tiny_source, num_kernels=8)
        assert h6._kernel_stack is not h8._kernel_stack
        assert h6.num_kernels == 6 and h8.num_kernels == 8

    def test_source_pixels_key_the_entry(self, cfg, tiny_source):
        h1 = HopkinsImaging(cfg, tiny_source, num_kernels=6)
        other = tiny_source * 0.5
        h2 = HopkinsImaging(cfg, other, num_kernels=6)
        assert h1._kernel_stack is not h2._kernel_stack

    def test_byte_budget_evicts(self, cfg, tiny_source, monkeypatch):
        """Source-keyed SOCS entries cannot grow without limit (AM rebuilds)."""
        _, kernels, _ = cache.socs(cfg, tiny_source, 4)
        monkeypatch.setattr(cache, "SOCS_BUDGET_BYTES", 3 * kernels.data.nbytes)
        rng = np.random.default_rng(0)
        for _ in range(10):
            src = tiny_source * rng.uniform(0.1, 1.0)
            cache.socs(cfg, src, 4)
        assert len(cache._CACHES["socs"]) <= 3

    def test_oversized_entry_still_cached(self, cfg, tiny_source, monkeypatch):
        """A decomposition larger than the whole budget keeps one live copy."""
        monkeypatch.setattr(cache, "SOCS_BUDGET_BYTES", 1)
        e1 = cache.socs(cfg, tiny_source, 4)
        e2 = cache.socs(cfg, tiny_source, 4)
        assert e1[1] is e2[1]
        assert len(cache._CACHES["socs"]) == 1


class TestAccounting:
    def test_stats_shape_and_reset(self, cfg):
        cfg.freq_axes()
        cfg.freq_axes()
        stats = cache.stats()
        assert stats["freq_axes"]["misses"] == 1
        assert stats["freq_axes"]["hits"] == 1
        cache.reset_stats()
        stats = cache.stats()
        assert stats["freq_axes"] == {"hits": 0, "misses": 0}

    def test_clear_drops_entries(self, cfg):
        f1, _ = cfg.freq_axes()
        cache.clear()
        f2, _ = cfg.freq_axes()
        assert f1 is not f2
        np.testing.assert_allclose(f1, f2)

    def test_objectives_share_one_engine(self, cfg, tiny_target):
        """Objective default engines route through the cache."""
        from repro.smo import AbbeSMOObjective

        o1 = AbbeSMOObjective(cfg, tiny_target)
        o2 = AbbeSMOObjective(cfg, tiny_target)
        assert o1.engine is o2.engine

    def test_clear_during_build_still_caches(self, cfg):
        """A clear() racing a slow build must not orphan the insert.

        The entry has to land in the *live* category dict so the next
        lookup is a hit — the pre-fix behavior silently inserted into a
        dict that clear() had already discarded.
        """
        calls = {"n": 0}

        def build():
            calls["n"] += 1
            cache.clear()  # simulates a concurrent clear mid-build
            return object()

        first = cache._lookup("race", "key", build)
        second = cache._lookup("race", "key", lambda: object())
        assert second is first  # cached despite the clear
        assert calls["n"] == 1
        assert cache.stats()["race"]["hits"] == 1

    def test_clear_during_build_keeps_stats_truthful(self, cfg):
        def build():
            cache.clear()
            return object()

        cache._lookup("race2", "k", build)
        stats = cache.stats()["race2"]
        # the post-clear insert re-registers the category, so the
        # subsequent hit/miss accounting starts from a live dict
        assert stats == {"hits": 0, "misses": 0}
        cache._lookup("race2", "k", lambda: object())
        assert cache.stats()["race2"]["hits"] == 1


class TestWarmup:
    def test_warmup_populates_config_keyed_categories(self, cfg):
        cache.warmup(cfg)
        stats = cache.stats()
        for category in (
            "freq_axes",
            "freq_grid",
            "source_grid",
            "pupil_stack",
            "abbe_engine",
        ):
            assert stats[category]["misses"] >= 1, category
        cache.reset_stats()
        engine = cache.abbe_engine(cfg)
        assert engine is not None
        stats = cache.stats()
        assert stats["abbe_engine"] == {"hits": 1, "misses": 0}

    def test_warmup_is_idempotent(self, cfg):
        cache.warmup(cfg)
        cache.reset_stats()
        cache.warmup(cfg)
        stats = cache.stats()
        assert all(v["misses"] == 0 for v in stats.values())
