"""Tests for OpticalConfig presets and derived quantities."""

import numpy as np
import pytest

from repro.optics import OpticalConfig


class TestDefaults:
    def test_paper_constants(self):
        cfg = OpticalConfig()
        assert cfg.wavelength_nm == 193.0
        assert cfg.na == 1.35
        assert cfg.sigma_out == 0.95
        assert cfg.sigma_in == 0.63
        assert cfg.gamma == 1000.0
        assert cfg.eta == 3000.0
        assert cfg.socs_terms == 24
        assert cfg.beta == 30.0
        assert cfg.alpha_m == 9.0
        assert cfg.alpha_j == 2.0

    def test_cutoff_frequency(self):
        cfg = OpticalConfig()
        assert cfg.cutoff_freq == pytest.approx(1.35 / 193.0)

    def test_pixel_size(self):
        cfg = OpticalConfig(mask_size=128, tile_nm=2000.0)
        assert cfg.pixel_nm == pytest.approx(15.625)
        assert cfg.pixel_area_nm2 == pytest.approx(15.625**2)

    def test_dose_brackets_nominal(self):
        with pytest.raises(ValueError):
            OpticalConfig(dose_min=1.01)
        with pytest.raises(ValueError):
            OpticalConfig(dose_max=0.99)

    def test_sigma_ordering_enforced(self):
        with pytest.raises(ValueError):
            OpticalConfig(sigma_in=0.96, sigma_out=0.95)
        with pytest.raises(ValueError):
            OpticalConfig(sigma_out=1.2)

    def test_positive_grids(self):
        with pytest.raises(ValueError):
            OpticalConfig(mask_size=0)


class TestPresets:
    def test_paper_preset(self):
        cfg = OpticalConfig.preset("paper")
        assert cfg.mask_size == 2048
        assert cfg.source_size == 35

    def test_all_presets_sample_validly(self):
        for name in ("paper", "default", "small", "tiny"):
            OpticalConfig.preset(name).validate_sampling()

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            OpticalConfig.preset("huge")

    def test_with_update(self):
        cfg = OpticalConfig.preset("tiny").with_(beta=50.0)
        assert cfg.beta == 50.0
        assert cfg.mask_size == OpticalConfig.preset("tiny").mask_size


class TestGrids:
    def test_freq_axes_fftfreq_layout(self):
        cfg = OpticalConfig.preset("tiny")
        f, g = cfg.freq_axes()
        np.testing.assert_allclose(f, np.fft.fftfreq(cfg.mask_size, d=cfg.pixel_nm))
        assert f[0] == 0.0

    def test_freq_grid_shapes(self):
        cfg = OpticalConfig.preset("tiny")
        fx, fy = cfg.freq_grid()
        assert fx.shape == (cfg.mask_size, cfg.mask_size)
        # xy indexing: fx varies along columns, fy along rows
        assert fx[0, 1] != fx[0, 0] or cfg.mask_size == 1
        assert fy[1, 0] != fy[0, 0]

    def test_source_axes_span_unit(self):
        ax = OpticalConfig.preset("tiny").source_sigma_axes()
        assert ax[0] == -1.0
        assert ax[-1] == 1.0

    def test_undersampled_grid_rejected(self):
        cfg = OpticalConfig(mask_size=16, tile_nm=2000.0)
        with pytest.raises(ValueError):
            cfg.validate_sampling()
