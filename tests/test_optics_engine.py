"""Tests for the unified ImagingEngine layer: batched multi-tile
evaluation, the graph-free fast path, and the protocol surface."""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.optics import (
    AbbeImaging,
    HopkinsImaging,
    ImagingEngine,
    OpticalConfig,
    as_tile_batch,
    engine_for,
)


@pytest.fixture(scope="module")
def cfg() -> OpticalConfig:
    return OpticalConfig.preset("tiny")


@pytest.fixture(scope="module")
def tiles(cfg, tiny_target) -> np.ndarray:
    """Three distinct (N, N) tiles: the target, its transpose, a shifted copy."""
    t = tiny_target
    return np.stack([t, t.T, np.roll(t, 5, axis=1)])


@pytest.fixture(scope="module")
def abbe(cfg) -> AbbeImaging:
    return AbbeImaging(cfg)


@pytest.fixture(scope="module")
def hopkins(cfg, tiny_source) -> HopkinsImaging:
    return HopkinsImaging(cfg, tiny_source, num_kernels=8)


class TestProtocol:
    def test_both_engines_satisfy_protocol(self, abbe, hopkins):
        assert isinstance(abbe, ImagingEngine)
        assert isinstance(hopkins, ImagingEngine)

    def test_engine_for_dispatch(self, cfg, tiny_source):
        assert isinstance(engine_for(cfg, "abbe"), AbbeImaging)
        assert isinstance(
            engine_for(cfg, "hopkins", source=tiny_source), HopkinsImaging
        )
        with pytest.raises(ValueError):
            engine_for(cfg, "hopkins")
        with pytest.raises(KeyError):
            engine_for(cfg, "kirchhoff")

    def test_abbe_requires_source(self, abbe, tiles):
        with pytest.raises(ValueError):
            abbe.aerial(ad.Tensor(tiles[0]))
        with pytest.raises(ValueError):
            abbe.aerial_fast(tiles[0])

    def test_hopkins_rejects_source(self, hopkins, tiles, tiny_source):
        with pytest.raises(ValueError):
            hopkins.aerial(ad.Tensor(tiles[0]), ad.Tensor(tiny_source))
        with pytest.raises(ValueError):
            hopkins.aerial_fast(tiles[0], tiny_source)

    def test_bad_mask_rank_raises(self, abbe, hopkins, tiles, tiny_source):
        bad = ad.Tensor(tiles[0][0])  # 1-D
        with pytest.raises(ValueError):
            abbe.aerial(bad, ad.Tensor(tiny_source))
        with pytest.raises(ValueError):
            hopkins.aerial(bad)

    def test_as_tile_batch_validation(self, cfg, tiles):
        batch, single = as_tile_batch(tiles[0], cfg.mask_size)
        assert single and batch.shape == (1,) + tiles[0].shape
        batch, single = as_tile_batch(tiles, cfg.mask_size)
        assert not single and batch.shape == tiles.shape
        with pytest.raises(ValueError):
            as_tile_batch(np.zeros((4, 4)), cfg.mask_size)
        with pytest.raises(ValueError):
            as_tile_batch(np.zeros((2, 2, 2, 2)), cfg.mask_size)


class TestBatchedEquivalence:
    def test_abbe_batched_matches_per_tile(self, abbe, tiles, tiny_source):
        src = ad.Tensor(tiny_source)
        with ad.no_grad():
            batched = abbe.aerial(ad.Tensor(tiles), src).data
            singles = np.stack(
                [abbe.aerial(ad.Tensor(t), src).data for t in tiles]
            )
        assert batched.shape == tiles.shape
        np.testing.assert_allclose(batched, singles, atol=1e-12)

    def test_hopkins_batched_matches_per_tile(self, hopkins, tiles):
        with ad.no_grad():
            batched = hopkins.aerial(ad.Tensor(tiles)).data
            singles = np.stack([hopkins.aerial(ad.Tensor(t)).data for t in tiles])
        assert batched.shape == tiles.shape
        np.testing.assert_allclose(batched, singles, atol=1e-12)

    def test_abbe_batched_gradients_match_per_tile(self, abbe, tiles, tiny_source):
        """The fused (B*S, N, N) graph backpropagates per-tile gradients."""
        src_np = tiny_source + 0.05  # keep every source weight active
        stack = ad.Tensor(tiles, requires_grad=True)
        src = ad.Tensor(src_np, requires_grad=True)
        loss = (abbe.aerial(stack, src) ** 2.0).sum()
        gm, gs = ad.grad(loss, [stack, src])
        gs_sum = np.zeros_like(src_np)
        for b, tile in enumerate(tiles):
            m = ad.Tensor(tile, requires_grad=True)
            s = ad.Tensor(src_np, requires_grad=True)
            l_b = (abbe.aerial(m, s) ** 2.0).sum()
            gm_b, gs_b = ad.grad(l_b, [m, s])
            np.testing.assert_allclose(gm.data[b], gm_b.data, atol=1e-9)
            gs_sum += gs_b.data
        np.testing.assert_allclose(gs.data, gs_sum, atol=1e-9)

    def test_hopkins_batched_gradients_match_per_tile(self, hopkins, tiles):
        stack = ad.Tensor(tiles, requires_grad=True)
        loss = (hopkins.aerial(stack) ** 2.0).sum()
        (gm,) = ad.grad(loss, [stack])
        for b, tile in enumerate(tiles):
            m = ad.Tensor(tile, requires_grad=True)
            (gm_b,) = ad.grad((hopkins.aerial(m) ** 2.0).sum(), [m])
            np.testing.assert_allclose(gm.data[b], gm_b.data, atol=1e-9)


class TestFastPathParity:
    def test_abbe_fast_matches_graph_single(self, abbe, tiles, tiny_source):
        """Annular source has exact zeros -> the pruned path must still agree."""
        with ad.no_grad():
            graph = abbe.aerial(ad.Tensor(tiles[0]), ad.Tensor(tiny_source)).data
        fast = abbe.aerial_fast(tiles[0], tiny_source)
        np.testing.assert_allclose(fast, graph, atol=1e-12)

    def test_abbe_fast_matches_graph_batched(self, abbe, tiles, tiny_source):
        with ad.no_grad():
            graph = abbe.aerial(ad.Tensor(tiles), ad.Tensor(tiny_source)).data
        fast = abbe.aerial_fast(tiles, tiny_source)
        assert fast.shape == tiles.shape
        np.testing.assert_allclose(fast, graph, atol=1e-12)

    def test_abbe_fast_dense_source(self, abbe, tiles):
        """No zero weights at all (sigmoid-parametrized source shape)."""
        dense = np.full(abbe.source_grid.shape, 0.3)
        with ad.no_grad():
            graph = abbe.aerial(ad.Tensor(tiles[1]), ad.Tensor(dense)).data
        np.testing.assert_allclose(
            abbe.aerial_fast(tiles[1], dense), graph, atol=1e-12
        )

    def test_abbe_fast_accepts_tensors(self, abbe, tiles, tiny_source):
        out = abbe.aerial_fast(ad.Tensor(tiles[0]), ad.Tensor(tiny_source))
        assert isinstance(out, np.ndarray)

    def test_abbe_fast_all_zero_source(self, abbe, tiles):
        zero = np.zeros(abbe.source_grid.shape)
        with ad.no_grad():
            graph = abbe.aerial(ad.Tensor(tiles[0]), ad.Tensor(zero)).data
        np.testing.assert_allclose(
            abbe.aerial_fast(tiles[0], zero), graph, atol=1e-12
        )

    def test_hopkins_fast_matches_graph(self, hopkins, tiles):
        with ad.no_grad():
            graph_one = hopkins.aerial(ad.Tensor(tiles[0])).data
            graph_all = hopkins.aerial(ad.Tensor(tiles)).data
        np.testing.assert_allclose(
            hopkins.aerial_fast(tiles[0]), graph_one, atol=1e-12
        )
        np.testing.assert_allclose(
            hopkins.aerial_fast(tiles), graph_all, atol=1e-12
        )

    def test_defocused_fast_parity(self, cfg, tiles, tiny_source):
        """Complex (defocused) pupil stacks ride the same fast path."""
        engine = AbbeImaging(cfg, defocus_nm=120.0)
        with ad.no_grad():
            graph = engine.aerial(ad.Tensor(tiles[0]), ad.Tensor(tiny_source)).data
        np.testing.assert_allclose(
            engine.aerial_fast(tiles[0], tiny_source), graph, atol=1e-12
        )
