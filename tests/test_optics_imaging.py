"""Tests for the Abbe and Hopkins imaging engines: physical sanity,
cross-model agreement, and differentiability."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.autodiff.grad import gradcheck
from repro.optics import (
    AbbeImaging,
    HopkinsImaging,
    OpticalConfig,
    SourceGrid,
    annular,
    build_tcc,
    coherent_point,
    pupil,
    resist_image,
    shifted_pupil_stack,
    socs_kernels,
)


@pytest.fixture(scope="module")
def cfg():
    return OpticalConfig.preset("tiny")


@pytest.fixture(scope="module")
def grid(cfg):
    return SourceGrid.from_config(cfg)


@pytest.fixture(scope="module")
def src(cfg, grid):
    return annular(grid, cfg.sigma_out, cfg.sigma_in)


@pytest.fixture(scope="module")
def abbe(cfg):
    return AbbeImaging(cfg)


@pytest.fixture(scope="module")
def mask(cfg):
    rng = np.random.default_rng(0)
    return (rng.random((cfg.mask_size, cfg.mask_size)) > 0.75).astype(np.float64)


class TestPupil:
    def test_low_pass_disc(self, cfg):
        h = pupil(cfg)
        fx, fy = cfg.freq_grid()
        inside = np.hypot(fx, fy) <= cfg.cutoff_freq
        np.testing.assert_array_equal(h > 0, inside)

    def test_dc_always_passes(self, cfg):
        assert pupil(cfg)[0, 0] == 1.0

    def test_stack_shape(self, cfg, grid):
        stack, idx = shifted_pupil_stack(cfg, grid)
        assert stack.shape == (grid.num_valid, cfg.mask_size, cfg.mask_size)
        assert len(idx[0]) == grid.num_valid

    def test_centre_point_stack_matches_unshifted(self, cfg, grid):
        stack, idx = shifted_pupil_stack(cfg, grid)
        rows, cols = idx
        centre = np.argmin(
            np.hypot(grid.sigma_x[rows, cols], grid.sigma_y[rows, cols])
        )
        np.testing.assert_array_equal(stack[centre], pupil(cfg))


class TestAbbePhysics:
    def test_clear_field_is_one(self, abbe, src):
        assert abbe.clear_field_intensity(src) == pytest.approx(1.0, abs=1e-6)

    def test_dark_field_is_zero(self, cfg, abbe, src):
        with ad.no_grad():
            img = abbe.aerial(ad.Tensor(np.zeros((cfg.mask_size,) * 2)), ad.Tensor(src))
        assert np.abs(img.data).max() < 1e-20

    def test_intensity_nonnegative(self, abbe, mask, src):
        with ad.no_grad():
            img = abbe.aerial(ad.Tensor(mask), ad.Tensor(src))
        assert img.data.min() >= -1e-12

    def test_source_scale_invariance(self, abbe, mask, src):
        """Normalization makes J and c*J produce identical images."""
        with ad.no_grad():
            i1 = abbe.aerial(ad.Tensor(mask), ad.Tensor(src)).data
            i2 = abbe.aerial(ad.Tensor(mask), ad.Tensor(0.37 * src)).data
        np.testing.assert_allclose(i1, i2, atol=1e-12)

    def test_batched_equals_loop(self, abbe, mask, src):
        with ad.no_grad():
            fast = abbe.aerial(ad.Tensor(mask), ad.Tensor(src)).data
            slow = abbe.aerial_loop(ad.Tensor(mask), ad.Tensor(src)).data
        np.testing.assert_allclose(fast, slow, atol=1e-12)

    def test_coherent_limit_single_kernel(self, cfg, grid, abbe, mask):
        """A single on-axis source point = coherent imaging: |h * M|^2."""
        point = coherent_point(grid)
        with ad.no_grad():
            img = abbe.aerial(ad.Tensor(mask), ad.Tensor(point)).data
        h = pupil(cfg)
        field = np.fft.ifft2(h * np.fft.fft2(mask))
        np.testing.assert_allclose(img, np.abs(field) ** 2, atol=1e-12)

    def test_shift_covariance(self, cfg, abbe, mask, src):
        """Imaging commutes with cyclic mask shifts (space invariance)."""
        shifted = np.roll(mask, (5, -3), axis=(0, 1))
        with ad.no_grad():
            i1 = abbe.aerial(ad.Tensor(mask), ad.Tensor(src)).data
            i2 = abbe.aerial(ad.Tensor(shifted), ad.Tensor(src)).data
        np.testing.assert_allclose(np.roll(i1, (5, -3), axis=(0, 1)), i2, atol=1e-10)

    def test_dose_quadratic_scaling(self, abbe, mask, src):
        """I(d*M) == d^2 I(M) — the identity behind the fast PVB loss."""
        with ad.no_grad():
            i1 = abbe.aerial(ad.Tensor(0.98 * mask), ad.Tensor(src)).data
            i2 = abbe.aerial(ad.Tensor(mask), ad.Tensor(src)).data
        np.testing.assert_allclose(i1, 0.98**2 * i2, atol=1e-12)


class TestAbbeGradients:
    def test_gradcheck_wrt_mask(self, cfg, src):
        small = OpticalConfig(mask_size=24, tile_nm=500.0, source_size=5)
        engine = AbbeImaging(small)
        sgrid = SourceGrid.from_config(small)
        s = annular(sgrid, 0.95, 0.4)
        rng = np.random.default_rng(1)
        m = ad.Tensor(rng.random((24, 24)))
        gradcheck(
            lambda t: F.sum(F.power(engine.aerial(t, ad.Tensor(s)), 2.0)), [m],
            rtol=1e-3, atol=1e-6,
        )

    def test_gradcheck_wrt_source(self):
        small = OpticalConfig(mask_size=24, tile_nm=500.0, source_size=5)
        engine = AbbeImaging(small)
        sgrid = SourceGrid.from_config(small)
        s = ad.Tensor(annular(sgrid, 0.95, 0.4) * 0.7 + 0.1)
        rng = np.random.default_rng(2)
        m = ad.Tensor((rng.random((24, 24)) > 0.7).astype(float))
        gradcheck(
            lambda t: F.sum(F.power(engine.aerial(m, t), 2.0)), [s],
            rtol=1e-3, atol=1e-6,
        )

    def test_gradients_flow_to_both(self, abbe, mask, src):
        m = ad.Tensor(mask, requires_grad=True)
        s = ad.Tensor(src + 0.1, requires_grad=True)
        loss = F.sum(abbe.aerial(m, s))
        gm, gs = ad.grad(loss, [m, s])
        assert np.abs(gm.data).max() > 0
        assert np.abs(gs.data).max() > 0


class TestHopkins:
    def test_tcc_symmetric_psd(self, cfg, src):
        tcc, _ = build_tcc(cfg, src)
        np.testing.assert_allclose(tcc, tcc.T, atol=1e-12)
        vals = np.linalg.eigvalsh(tcc)
        assert vals.min() > -1e-10

    def test_wrong_source_shape_raises(self, cfg):
        with pytest.raises(ValueError):
            build_tcc(cfg, np.ones((3, 3)))

    def test_full_rank_socs_equals_abbe(self, cfg, abbe, mask, src):
        tcc, _ = build_tcc(cfg, src)
        hop = HopkinsImaging(cfg, src, num_kernels=tcc.shape[0])
        with ad.no_grad():
            i_abbe = abbe.aerial(ad.Tensor(mask), ad.Tensor(src)).data
            i_hop = hop.aerial(ad.Tensor(mask)).data
        np.testing.assert_allclose(i_abbe, i_hop, atol=1e-10)

    def test_eigenvalues_descending(self, cfg, src):
        vals, _, _ = socs_kernels(cfg, src, num_kernels=8)
        assert np.all(np.diff(vals) <= 1e-12)

    def test_truncation_energy_monotonic(self, cfg, src):
        e4 = HopkinsImaging(cfg, src, num_kernels=4).truncation_energy
        e12 = HopkinsImaging(cfg, src, num_kernels=12).truncation_energy
        assert e4 < e12 <= 1.0 + 1e-9

    def test_truncation_error_decreases_with_q(self, cfg, abbe, mask, src):
        with ad.no_grad():
            ref = abbe.aerial(ad.Tensor(mask), ad.Tensor(src)).data
            e = []
            for q in (2, 8, 16):
                hop = HopkinsImaging(cfg, src, num_kernels=q)
                e.append(np.abs(hop.aerial(ad.Tensor(mask)).data - ref).max())
        assert e[0] >= e[1] >= e[2]

    def test_mask_gradients_flow(self, cfg, mask, src):
        hop = HopkinsImaging(cfg, src, num_kernels=6)
        m = ad.Tensor(mask, requires_grad=True)
        (g,) = ad.grad(F.sum(hop.aerial(m)), [m])
        assert np.abs(g.data).max() > 0

    def test_eigsh_path_matches_dense(self, cfg, src):
        """Small-Q (Lanczos) and full (dense eigh) agree on top pairs."""
        tcc, _ = build_tcc(cfg, src)
        p = tcc.shape[0]
        vals_l, _, _ = socs_kernels(cfg, src, num_kernels=5)
        vals_d, _, _ = socs_kernels(cfg, src, num_kernels=p)
        np.testing.assert_allclose(vals_l, vals_d[:5], atol=1e-9)


class TestResist:
    def test_threshold_behaviour(self, cfg):
        aerial = ad.Tensor(np.array([[0.0, cfg.intensity_threshold, 1.0]]))
        z = resist_image(aerial, cfg).data
        assert z[0, 0] < 0.01
        assert z[0, 1] == pytest.approx(0.5)
        assert z[0, 2] > 0.99

    def test_custom_threshold(self, cfg):
        aerial = ad.Tensor(np.array([[0.5]]))
        z = resist_image(aerial, cfg, threshold=0.5).data
        assert z[0, 0] == pytest.approx(0.5)

    def test_calibrate_threshold(self, cfg):
        from repro.optics import calibrate_threshold

        rng = np.random.default_rng(0)
        aerial = rng.random((32, 32))
        target = (rng.random((32, 32)) > 0.7).astype(float)
        tr = calibrate_threshold(aerial, target)
        printed = (aerial >= tr).sum()
        assert abs(int(printed) - int(target.sum())) <= 32  # within bisection tol

    def test_calibrate_empty_target_raises(self, cfg):
        from repro.optics import calibrate_threshold

        with pytest.raises(ValueError):
            calibrate_threshold(np.ones((4, 4)), np.zeros((4, 4)))
