"""Defocus pupil tests: Fresnel phase sign/scale, zero-defocus identity,
and the conjugate-pair structure that the fused condition-axis streaming
relies on (the structural pairing survives defocus, the conjugate field
identity does not — engines must opt out of pairing on complex stacks)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optics import (
    AbbeImaging,
    OpticalConfig,
    SourceGrid,
    conj_pair_indices,
    defocus_phase,
    defocused_pupil_stack,
    shifted_pupil_stack,
    fftlib,
)
from repro.optics import cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    cache.clear()
    yield
    cache.clear()


class TestDefocusPhase:
    def test_matches_fresnel_formula(self, tiny_config):
        """exp(-i pi lambda z (f^2 + g^2)) from first principles."""
        z = 75.0
        f = np.fft.fftfreq(tiny_config.mask_size, d=tiny_config.pixel_nm)
        fx, fy = np.meshgrid(f, f, indexing="xy")
        expected = np.exp(
            -1j * np.pi * tiny_config.wavelength_nm * z * (fx**2 + fy**2)
        )
        np.testing.assert_allclose(
            defocus_phase(tiny_config, z), expected, atol=1e-14
        )

    def test_unit_magnitude(self, tiny_config):
        """A pure aberration phase: |D| == 1 everywhere, any defocus."""
        for z in (-120.0, 33.3, 500.0):
            np.testing.assert_allclose(
                np.abs(defocus_phase(tiny_config, z)), 1.0, atol=1e-14
            )

    def test_zero_defocus_is_identity(self, tiny_config):
        np.testing.assert_array_equal(
            defocus_phase(tiny_config, 0.0),
            np.ones((tiny_config.mask_size,) * 2, dtype=complex),
        )

    def test_sign_convention_conjugate_for_negative_z(self, tiny_config):
        """D(-z) = conj(D(z)): through-focus symmetry of the phase."""
        np.testing.assert_allclose(
            defocus_phase(tiny_config, -60.0),
            np.conj(defocus_phase(tiny_config, 60.0)),
            atol=1e-14,
        )

    def test_even_in_frequency(self, tiny_config):
        """D(-f) == D(f): the property that preserves the +/-sigma
        structural pairing under defocus."""
        d = defocus_phase(tiny_config, 90.0)
        np.testing.assert_array_equal(d, fftlib.freq_reverse(d))


class TestDefocusedPupilStack:
    def test_zero_defocus_identity(self, tiny_config):
        """defocus_nm=0 returns the plain (real) shifted stack."""
        grid = SourceGrid.from_config(tiny_config)
        ref, ref_idx = shifted_pupil_stack(tiny_config, grid)
        stack, idx = defocused_pupil_stack(tiny_config, grid, 0.0)
        assert not np.iscomplexobj(stack)
        np.testing.assert_array_equal(stack, ref)
        for a, b in zip(idx, ref_idx):
            np.testing.assert_array_equal(a, b)

    def test_is_shifted_stack_times_phase(self, tiny_config):
        grid = SourceGrid.from_config(tiny_config)
        base, _ = shifted_pupil_stack(tiny_config, grid)
        z = 80.0
        stack, _ = defocused_pupil_stack(tiny_config, grid, z)
        np.testing.assert_allclose(
            stack, base * defocus_phase(tiny_config, z)[None], atol=1e-14
        )

    def test_magnitude_is_pupil_indicator(self, tiny_config):
        """Defocus is a pure phase: |stack| is the 0/1 pupil indicator."""
        grid = SourceGrid.from_config(tiny_config)
        base, _ = shifted_pupil_stack(tiny_config, grid)
        stack, _ = defocused_pupil_stack(tiny_config, grid, 150.0)
        np.testing.assert_allclose(np.abs(stack), base, atol=1e-13)


class TestConjugatePairing:
    def test_in_focus_pairing_verified(self, tiny_config):
        grid = SourceGrid.from_config(tiny_config)
        stack, idx = shifted_pupil_stack(tiny_config, grid)
        pairs = conj_pair_indices(stack, idx, grid)
        assert pairs is not None
        # Involution with the frequency-reversal identity, bitwise.
        np.testing.assert_array_equal(pairs[pairs], np.arange(pairs.size))
        np.testing.assert_array_equal(
            stack[pairs], fftlib.freq_reverse(stack)
        )

    def test_structural_pairing_survives_defocus(self, tiny_config):
        """K_{pair(s)}(f) == K_s(-f) still holds for the complex stack:
        the defocus phase is even, so frequency reversal maps the
        defocused pupil at +sigma onto the one at -sigma exactly."""
        grid = SourceGrid.from_config(tiny_config)
        base, idx = shifted_pupil_stack(tiny_config, grid)
        pairs = conj_pair_indices(base, idx, grid)
        stack, _ = defocused_pupil_stack(tiny_config, grid, 65.0)
        np.testing.assert_array_equal(stack[pairs], fftlib.freq_reverse(stack))

    def test_complex_stack_opts_out_of_field_pairing(self, tiny_config):
        """conj_pair_indices refuses complex stacks: F_{-sigma} =
        conj(F_{+sigma}) needs real kernels, so defocused engines must
        not stream half the pairs."""
        grid = SourceGrid.from_config(tiny_config)
        stack, idx = defocused_pupil_stack(tiny_config, grid, 65.0)
        assert conj_pair_indices(stack, idx, grid) is None
        engine = AbbeImaging(tiny_config, defocus_nm=65.0)
        assert engine._conj_pairs is None

    def test_fused_streaming_stays_valid_under_defocus(
        self, tiny_config, tiny_source
    ):
        """A defocused engine (pairing opted out) matches the per-point
        reference loop — the fused path is exact whether or not the
        half-FFT pairing is available."""
        import repro.autodiff as ad

        engine = AbbeImaging(tiny_config, defocus_nm=65.0)
        rng = np.random.default_rng(5)
        mask = rng.random((tiny_config.mask_size,) * 2)
        with ad.no_grad():
            fused = engine.aerial(ad.Tensor(mask), ad.Tensor(tiny_source)).data
            loop = engine.aerial_loop(
                ad.Tensor(mask), ad.Tensor(tiny_source)
            ).data
        np.testing.assert_allclose(fused, loop, atol=1e-12)

    def test_cached_conj_pairs_match_engine(self, tiny_config):
        pairs = cache.conj_pairs(tiny_config)
        engine = AbbeImaging(tiny_config)
        np.testing.assert_array_equal(pairs, engine._conj_pairs)
        assert cache.conj_pairs(tiny_config, 65.0) is None
