"""Tests for source grids and illumination templates."""

import numpy as np
import pytest

from repro.optics import (
    OpticalConfig,
    SourceGrid,
    annular,
    coherent_point,
    conventional,
    dipole,
    quasar,
)


@pytest.fixture(scope="module")
def grid():
    return SourceGrid.from_config(OpticalConfig(source_size=13))


class TestSourceGrid:
    def test_shape(self, grid):
        assert grid.shape == (13, 13)

    def test_valid_is_unit_disc(self, grid):
        r = np.hypot(grid.sigma_x, grid.sigma_y)
        assert np.array_equal(grid.valid, r <= 1.0 + 1e-12)

    def test_corners_invalid(self, grid):
        assert not grid.valid[0, 0]
        assert not grid.valid[-1, -1]

    def test_centre_valid(self, grid):
        assert grid.valid[6, 6]

    def test_freq_offsets_scale(self, grid):
        cfg = OpticalConfig(source_size=13)
        ox, oy = grid.freq_offsets(cfg)
        assert len(ox) == grid.num_valid
        assert np.abs(ox).max() <= cfg.cutoff_freq + 1e-12


class TestTemplates:
    def test_annular_ring_only(self, grid):
        src = annular(grid, 0.95, 0.63)
        r = np.hypot(grid.sigma_x, grid.sigma_y)
        lit = src > 0
        assert np.all(r[lit] >= 0.63)
        assert np.all(r[lit] <= 0.95)
        assert lit.sum() > 0

    def test_annular_empty_raises(self):
        small = SourceGrid.from_config(OpticalConfig(source_size=3))
        with pytest.raises(ValueError):
            annular(small, 0.66, 0.63)

    def test_quasar_subset_of_annulus(self, grid):
        q = quasar(grid, 0.95, 0.4, opening_deg=60)
        a = annular(grid, 0.95, 0.4)
        assert np.all(a[q > 0] == 1.0)
        assert q.sum() < a.sum()

    def test_quasar_fourfold_symmetric(self, grid):
        q = quasar(grid, 0.95, 0.3, opening_deg=90)
        np.testing.assert_array_equal(q, np.rot90(q))

    def test_dipole_axes(self, grid):
        dx = dipole(grid, 0.95, 0.4, axis="x", opening_deg=60)
        dy = dipole(grid, 0.95, 0.4, axis="y", opening_deg=60)
        assert dx.sum() == dy.sum()  # symmetric grids
        assert not np.array_equal(dx, dy)
        np.testing.assert_array_equal(dx, np.rot90(dy))

    def test_dipole_bad_axis(self, grid):
        with pytest.raises(ValueError):
            dipole(grid, 0.95, 0.4, axis="z")

    def test_conventional_disc(self, grid):
        c = conventional(grid, 0.6)
        r = np.hypot(grid.sigma_x, grid.sigma_y)
        assert np.all(r[c > 0] <= 0.6)

    def test_coherent_point_single(self, grid):
        p = coherent_point(grid)
        assert p.sum() == 1.0
        idx = np.unravel_index(np.argmax(p), p.shape)
        assert np.hypot(grid.sigma_x[idx], grid.sigma_y[idx]) < 0.2

    def test_templates_binary(self, grid):
        for src in (
            annular(grid, 0.95, 0.63),
            quasar(grid, 0.95, 0.4),
            dipole(grid, 0.95, 0.4),
            conventional(grid, 0.8),
        ):
            assert set(np.unique(src)) <= {0.0, 1.0}
