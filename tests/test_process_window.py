"""Process-window condition axis: config objects, the fused
``incoherent_image_stack`` primitive, the robust objectives (weighted
sum + smooth worst case) against per-corner reference loops, BiSMO
hypergradients through the condition axis, the windowed Hopkins path,
and the harness report."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.autodiff.grad import gradcheck
from repro.layouts import Clip
from repro.metrics import pvb_band_nm2, pvb_band_pixels, pvb_nm2
from repro.optics import (
    AbbeImaging,
    HopkinsImaging,
    OpticalConfig,
    ProcessCorner,
    ProcessWindow,
    engine_for,
)
from repro.smo import (
    AbbeMO,
    AbbeSMOObjective,
    BatchedSMOObjective,
    BiSMO,
    HopkinsMOObjective,
    ProcessWindowSMOObjective,
    init_theta_mask,
    init_theta_source,
)
from repro.smo.bismo import HypergradientContext

S, N = 6, 12


# ----------------------------------------------------------------------
# ProcessWindow / ProcessCorner value objects
# ----------------------------------------------------------------------
class TestProcessWindowConfig:
    def test_corner_validation(self):
        with pytest.raises(ValueError):
            ProcessCorner(dose=0.0)
        with pytest.raises(ValueError):
            ProcessCorner(weight=-1.0)
        assert ProcessCorner(0.98, 40.0).label == "d0.98/f40nm"

    def test_window_needs_corners(self):
        with pytest.raises(ValueError):
            ProcessWindow(corners=())

    def test_from_grid_shapes_and_order(self):
        pw = ProcessWindow.from_grid((0.96, 1.04), (0.0, 50.0))
        assert pw.num_corners == 4
        np.testing.assert_array_equal(pw.doses, [0.96, 0.96, 1.04, 1.04])
        assert pw.focus_values() == (0.0, 50.0)
        np.testing.assert_array_equal(pw.focus_index(), [0, 1, 0, 1])

    def test_from_grid_weight_validation(self):
        with pytest.raises(ValueError):
            ProcessWindow.from_grid((1.0,), (0.0,), weights=(1.0, 2.0))
        pw = ProcessWindow.from_grid((0.98, 1.02), weights=(2.0, 3.0))
        np.testing.assert_array_equal(pw.weights, [2.0, 3.0])

    def test_from_config_is_paper_window(self, tiny_config):
        pw = ProcessWindow.from_config(tiny_config)
        assert pw.labels == ("nominal", "dose-", "dose+")
        np.testing.assert_array_equal(
            pw.doses, [1.0, tiny_config.dose_min, tiny_config.dose_max]
        )
        np.testing.assert_array_equal(
            pw.weights,
            [tiny_config.gamma, tiny_config.eta, tiny_config.eta],
        )
        assert pw.focus_values() == (0.0,)
        assert tiny_config.process_window() == pw

    def test_hashable_and_picklable(self):
        pw = ProcessWindow.from_grid((0.98, 1.02), (0.0, 40.0))
        assert hash(pw) == hash(pickle.loads(pickle.dumps(pw)))
        assert pickle.loads(pickle.dumps(pw)) == pw


# ----------------------------------------------------------------------
# the fused multi-stack primitive
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stacks():
    rng = np.random.default_rng(7)
    real = rng.standard_normal((S, N, N)) * 0.4
    cplx = real * np.exp(1j * rng.standard_normal((N, N)))[None]
    return [real, cplx]


@pytest.fixture(scope="module")
def weights():
    return np.linspace(1.0, 0.3, S)


class TestIncoherentImageStack:
    @pytest.mark.parametrize("batch", [False, True])
    def test_matches_per_stack_calls(self, stacks, weights, batch):
        rng = np.random.default_rng(1)
        m = rng.standard_normal((3, N, N) if batch else (N, N))
        with ad.no_grad():
            out = F.incoherent_image_stack(m, stacks, weights).data
            refs = [
                F.incoherent_image(m, st, weights).data for st in stacks
            ]
        assert out.shape == (len(stacks),) + m.shape
        for fi, ref in enumerate(refs):
            np.testing.assert_allclose(out[fi], ref, atol=1e-12)

    def test_grads_match_composed_sum(self, stacks, weights):
        """Streamed multi-stack VJP == sum of composed per-stack grads."""
        rng = np.random.default_rng(2)
        m = rng.standard_normal((2, N, N))

        def fused(mt, wt):
            out = F.incoherent_image_stack(mt, stacks, wt)
            return F.sum(F.power(out, 2.0))

        def composed(mt, wt):
            total = None
            for st in stacks:
                li = F.sum(F.power(F.incoherent_image_composed(mt, st, wt), 2.0))
                total = li if total is None else F.add(total, li)
            return total

        grads = []
        for fn in (fused, composed):
            mt = ad.Tensor(m, requires_grad=True)
            wt = ad.Tensor(weights, requires_grad=True)
            gm, gw = ad.grad(fn(mt, wt), [mt, wt])
            grads.append((gm.data, gw.data))
        np.testing.assert_allclose(grads[0][0], grads[1][0], atol=1e-10)
        np.testing.assert_allclose(grads[0][1], grads[1][1], atol=1e-10)

    def test_fd_gradcheck(self, stacks, weights):
        rng = np.random.default_rng(3)
        m = rng.standard_normal((N, N))
        gradcheck(
            lambda mt, wt: F.sum(
                F.power(F.incoherent_image_stack(mt, stacks, wt), 2.0)
            ),
            [ad.Tensor(m), ad.Tensor(weights)],
            eps=1e-6,
            rtol=1e-4,
            atol=1e-6,
        )

    def test_conj_pairs_per_stack(self, tiny_config, tiny_source):
        """Real stack streams with pairing, complex stack without; both
        match the unpaired evaluation exactly."""
        engine = AbbeImaging(tiny_config)
        (s0, p0), (s1, p1) = engine.condition_stacks((0.0, 55.0))
        assert p0 is not None and p1 is None
        rng = np.random.default_rng(4)
        m = rng.standard_normal((tiny_config.mask_size,) * 2)
        j = tiny_source[engine._valid_index]
        j = j / j.sum()
        with ad.no_grad():
            paired = F.incoherent_image_stack(
                m, [s0, s1], j, conj_pairs=[p0, p1]
            ).data
            plain = F.incoherent_image_stack(m, [s0, s1], j).data
        np.testing.assert_allclose(paired, plain, atol=1e-13)

    def test_unfused_engine_builds_composed_condition_stack(
        self, tiny_config, tiny_source
    ):
        """fused=False engines honor the flag on the condition axis too:
        the composed-op reference graph matches the fused stack and
        carries gradients."""
        fused = AbbeImaging(tiny_config)
        composed = AbbeImaging(tiny_config, fused=False)
        rng = np.random.default_rng(6)
        m = rng.random((2, tiny_config.mask_size, tiny_config.mask_size))
        focus = (0.0, 55.0)
        outs = []
        for eng in (fused, composed):
            mt = ad.Tensor(m, requires_grad=True)
            st = ad.Tensor(tiny_source, requires_grad=True)
            stack = eng.aerial_conditions(mt, st, focus)
            gm, gs = ad.grad(F.sum(F.power(stack, 2.0)), [mt, st])
            outs.append((stack.data, gm.data, gs.data))
        for a, b in zip(outs[0], outs[1]):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_create_graph_fallback_hvp(self, stacks, weights):
        """Double backward through the stack primitive (the BiSMO path)
        matches finite differences of the first gradient."""
        rng = np.random.default_rng(5)
        m = rng.standard_normal((N, N))
        v = rng.standard_normal((N, N))

        def grad_m(mval):
            mt = ad.Tensor(mval, requires_grad=True)
            loss = F.sum(
                F.power(F.incoherent_image_stack(mt, stacks, weights), 2.0)
            )
            (gm,) = ad.grad(loss, [mt], create_graph=True)
            return gm

        mt = ad.Tensor(m, requires_grad=True)
        loss = F.sum(
            F.power(F.incoherent_image_stack(mt, stacks, weights), 2.0)
        )
        (gm,) = ad.grad(loss, [mt], create_graph=True)
        (hv,) = ad.grad(F.dot(gm, ad.Tensor(v)), [mt])
        eps = 1e-5
        gp = grad_m(m + eps * v).data
        gn = grad_m(m - eps * v).data
        fd = (gp - gn) / (2 * eps)
        np.testing.assert_allclose(hv.data, fd, rtol=1e-4, atol=1e-5)

    def test_validation(self, stacks, weights):
        m = np.zeros((N, N))
        with pytest.raises(ValueError):
            F.incoherent_image_stack(m, [], weights)
        with pytest.raises(ValueError):
            F.incoherent_image_stack(m, stacks, weights[:-1])
        with pytest.raises(ValueError):
            F.incoherent_image_stack(m, stacks, weights, conj_pairs=[None])


# ----------------------------------------------------------------------
# robust objectives
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def pw_setup():
    cfg = OpticalConfig.preset("tiny")
    rng = np.random.default_rng(11)
    targets = (rng.random((2, cfg.mask_size, cfg.mask_size)) > 0.6).astype(
        np.float64
    )
    from repro.optics import SourceGrid, annular

    source = annular(SourceGrid.from_config(cfg), cfg.sigma_out, cfg.sigma_in)
    theta_j = init_theta_source(source, cfg)
    theta_m = init_theta_mask(targets, cfg)
    window = ProcessWindow.from_grid((0.96, 1.0, 1.04), (0.0, 45.0, 90.0))
    return cfg, targets, source, theta_j, theta_m, window


class TestProcessWindowObjective:
    def test_default_window_equals_classic_loss(self, pw_setup):
        cfg, targets, _, theta_j, theta_m, _ = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets)
        classic = BatchedSMOObjective(cfg, targets)
        outs = []
        for obj in (pwo, classic):
            tj = ad.Tensor(theta_j, requires_grad=True)
            tm = ad.Tensor(theta_m, requires_grad=True)
            loss = obj.loss(tj, tm)
            gj, gm = ad.grad(loss, [tj, tm])
            outs.append((float(loss.data), gj.data, gm.data))
        np.testing.assert_allclose(outs[0][0], outs[1][0], rtol=1e-12)
        np.testing.assert_allclose(outs[0][1], outs[1][1], atol=1e-10)
        np.testing.assert_allclose(outs[0][2], outs[1][2], atol=1e-10)

    def test_single_tile_default_window_equals_abbe_objective(self, pw_setup):
        cfg, targets, _, theta_j, theta_m, _ = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets[0])
        classic = AbbeSMOObjective(cfg, targets[0])
        with ad.no_grad():
            a = pwo.loss(ad.Tensor(theta_j), ad.Tensor(theta_m[0])).data
            b = classic.loss(ad.Tensor(theta_j), ad.Tensor(theta_m[0])).data
        np.testing.assert_allclose(float(a), float(b), rtol=1e-12)

    def test_robust_sum_matches_reference_loop(self, pw_setup):
        """The acceptance bar: fused C-corner loss == per-corner loop to
        1e-10, gradients included."""
        cfg, targets, _, theta_j, theta_m, window = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets, window)
        outs = []
        for fn in (pwo.loss, pwo.loss_reference):
            tj = ad.Tensor(theta_j, requires_grad=True)
            tm = ad.Tensor(theta_m, requires_grad=True)
            loss = fn(tj, tm)
            gj, gm = ad.grad(loss, [tj, tm])
            outs.append((float(loss.data), gj.data, gm.data))
        np.testing.assert_allclose(outs[0][0], outs[1][0], rtol=1e-10)
        np.testing.assert_allclose(outs[0][1], outs[1][1], atol=1e-12)
        np.testing.assert_allclose(outs[0][2], outs[1][2], atol=1e-12)

    def test_reference_loop_honors_custom_engine(self, tiny_config, tiny_source):
        """loss_reference must evaluate the objective's own engine (its
        pupil stacks / source grid), not rebuild cache defaults."""
        from repro.optics import SourceGrid

        cfg = tiny_config
        engine = AbbeImaging(cfg, source_grid=SourceGrid.from_config(cfg))
        rng = np.random.default_rng(8)
        target = (rng.random((cfg.mask_size,) * 2) > 0.6).astype(np.float64)
        window = ProcessWindow.from_grid((0.97, 1.03), (0.0, 50.0))
        pwo = ProcessWindowSMOObjective(cfg, target, window, engine=engine)
        tj = init_theta_source(tiny_source, cfg)
        tm = init_theta_mask(target, cfg)
        with ad.no_grad():
            a = float(pwo.loss(ad.Tensor(tj), ad.Tensor(tm)).data)
            b = float(pwo.loss_reference(ad.Tensor(tj), ad.Tensor(tm)).data)
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_corner_matrix_consistent_with_loss(self, pw_setup):
        cfg, targets, _, theta_j, theta_m, window = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets, window)
        with ad.no_grad():
            loss = float(pwo.loss(ad.Tensor(theta_j), ad.Tensor(theta_m)).data)
        matrix = pwo.last_corner_losses
        assert matrix.shape == (window.num_corners, 2)
        np.testing.assert_allclose(
            loss, float(window.weights @ matrix.sum(axis=1)), rtol=1e-12
        )
        fast = pwo.corner_loss_matrix(theta_j, theta_m)
        np.testing.assert_allclose(fast, matrix, rtol=1e-10)
        np.testing.assert_allclose(
            pwo.last_tile_losses, window.weights @ matrix, rtol=1e-12
        )

    def test_robust_max_bounds_worst_corner(self, pw_setup):
        cfg, targets, _, theta_j, theta_m, window = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets, window, robust="max", tau=5.0)
        with ad.no_grad():
            lse = float(pwo.loss(ad.Tensor(theta_j), ad.Tensor(theta_m)).data)
        corner_totals = pwo.last_corner_losses.sum(axis=1)
        assert lse >= corner_totals.max()
        # tau -> 0 tightens onto the hard (weighted) max
        tight = ProcessWindowSMOObjective(
            cfg, targets, window, robust="max", tau=1e-3
        )
        with ad.no_grad():
            lse_tight = float(
                tight.loss(ad.Tensor(theta_j), ad.Tensor(theta_m)).data
            )
        assert abs(lse_tight - corner_totals.max()) < 1.0

    def test_robust_max_gradcheck(self, pw_setup):
        cfg, targets, _, theta_j, theta_m, window = pw_setup
        pwo = ProcessWindowSMOObjective(
            cfg, targets, window, robust="max", tau=50.0
        )
        gradcheck(
            lambda tj, tm: pwo.loss(tj, tm),
            [ad.Tensor(theta_j), ad.Tensor(theta_m)],
            eps=1e-5,
            rtol=1e-3,
            atol=1e-4,
        )

    def test_source_only_oracle_matches_full_loss(self, pw_setup):
        cfg, targets, _, theta_j, theta_m, window = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets, window)
        so = pwo.source_only_loss(theta_m)
        assert so is not None
        tj1 = ad.Tensor(theta_j, requires_grad=True)
        tm = ad.Tensor(theta_m)
        full = pwo.loss(tj1, tm)
        (g_full,) = ad.grad(full, [tj1])
        tj2 = ad.Tensor(theta_j, requires_grad=True)
        basis_loss = so(tj2)
        (g_basis,) = ad.grad(basis_loss, [tj2])
        np.testing.assert_allclose(
            float(basis_loss.data), float(full.data), rtol=1e-12
        )
        np.testing.assert_allclose(g_basis.data, g_full.data, atol=1e-10)

    def test_validation(self, pw_setup):
        cfg, targets, *_ = pw_setup
        with pytest.raises(ValueError):
            ProcessWindowSMOObjective(cfg, targets, robust="median")
        with pytest.raises(ValueError):
            ProcessWindowSMOObjective(cfg, targets, reduction="prod")
        pwo = ProcessWindowSMOObjective(cfg, targets)
        with pytest.raises(ValueError):
            pwo.loss(ad.Tensor(np.zeros(5)), ad.Tensor(targets[:1]))

    def test_rejects_baked_source_engines(self, pw_setup):
        """The SMO objective is a function of theta_J; Hopkins engines
        (source baked into the TCC) must be rejected up front with a
        pointer to HopkinsMOObjective(window=...)."""
        cfg, targets, source, *_ = pw_setup
        hopkins = engine_for(cfg, "hopkins", source=source)
        with pytest.raises(ValueError, match="HopkinsMOObjective"):
            ProcessWindowSMOObjective(cfg, targets, engine=hopkins)

    def test_images_keys_and_band(self, pw_setup):
        cfg, targets, _, theta_j, theta_m, window = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets, window)
        images = pwo.images(theta_j, theta_m)
        c = window.num_corners
        f = len(window.focus_values())
        assert images["corner_resists"].shape == (c, 2, cfg.mask_size, cfg.mask_size)
        assert images["corner_aerials"].shape == (f, 2, cfg.mask_size, cfg.mask_size)
        for key in ("aerial", "resist", "resist_min", "resist_max"):
            assert images[key].shape == targets.shape
        band = pvb_band_nm2(images["corner_resists"][:, 0], cfg)
        assert band >= 0.0


# ----------------------------------------------------------------------
# BiSMO hypergradients through the condition axis
# ----------------------------------------------------------------------
class TestBilevelThroughConditions:
    def test_hvp_and_mixed_vjp_pass_fd_gradcheck(self, pw_setup):
        """Exact double-backward second-order oracles through the fused
        condition stack match central differences (the acceptance bar
        for BiSMO hypergradients through the condition axis)."""
        cfg, targets, _, theta_j, theta_m, window = pw_setup
        pwo = ProcessWindowSMOObjective(cfg, targets, window)
        exact = HypergradientContext(pwo, theta_j, theta_m, hvp_mode="exact")
        fd = HypergradientContext(
            pwo, theta_j, theta_m, hvp_mode="fd", fd_eps=1e-3
        )
        rng = np.random.default_rng(0)
        v = rng.standard_normal(theta_j.shape)
        hv_exact, hv_fd = exact.hvp(v), fd.hvp(v)
        scale = max(np.abs(hv_exact).max(), 1e-12)
        assert np.abs(hv_exact - hv_fd).max() / scale < 1e-4
        mv_exact, mv_fd = exact.mixed_vjp(v), fd.mixed_vjp(v)
        scale = max(np.abs(mv_exact).max(), 1e-12)
        assert np.abs(mv_exact - mv_fd).max() / scale < 1e-4

    def test_bismo_window_run_improves(self, pw_setup):
        cfg, targets, source, _, _, window = pw_setup
        solver = BiSMO(
            cfg, targets, method="nmn", unroll_steps=1, terms=2,
            process_window=window,
        )
        result = solver.run(source, iterations=3)
        assert isinstance(solver.objective, ProcessWindowSMOObjective)
        assert result.losses[-1] < result.losses[0]
        assert np.all(np.isfinite(result.losses))


# ----------------------------------------------------------------------
# Hopkins window path
# ----------------------------------------------------------------------
class TestHopkinsWindow:
    def test_defocused_socs_matches_abbe_at_full_rank(
        self, tiny_config, tiny_source
    ):
        """The rank-preserving phase identity: a defocused full-rank SOCS
        reproduces the defocused Abbe aerial without re-decomposition."""
        cfg = tiny_config
        fx, fy = cfg.freq_grid()
        support = int((np.hypot(fx, fy) <= 2 * cfg.cutoff_freq + 1e-15).sum())
        hop = HopkinsImaging(cfg, tiny_source, num_kernels=support, defocus_nm=70.0)
        abbe = AbbeImaging(cfg, defocus_nm=70.0)
        rng = np.random.default_rng(9)
        mask = rng.random((cfg.mask_size,) * 2)
        np.testing.assert_allclose(
            hop.aerial_fast(mask),
            abbe.aerial_fast(mask, tiny_source),
            atol=1e-10,
        )

    def test_windowed_hopkins_objective_matches_loop(
        self, tiny_config, tiny_source, tiny_target
    ):
        cfg = tiny_config
        window = ProcessWindow.from_grid((0.97, 1.03), (0.0, 60.0))
        obj = HopkinsMOObjective(cfg, tiny_target, tiny_source, window=window)
        theta_m = init_theta_mask(tiny_target, cfg)
        tm = ad.Tensor(theta_m, requires_grad=True)
        loss = obj.loss(tm)
        (gm,) = ad.grad(loss, [tm])
        # reference: per-corner loop over per-focus Hopkins engines
        from repro.smo.objective import dose_resist

        tm2 = ad.Tensor(theta_m, requires_grad=True)
        from repro.smo.parametrization import mask_from_theta

        mask = mask_from_theta(tm2, cfg)
        total = None
        for corner in window.corners:
            eng = engine_for(
                cfg, "hopkins", source=tiny_source, defocus_nm=corner.defocus_nm
            )
            z = dose_resist(eng.aerial(mask), cfg, corner.dose)
            li = F.mul(
                F.sum(F.power(F.sub(z, ad.Tensor(tiny_target)), 2.0)),
                corner.weight,
            )
            total = li if total is None else F.add(total, li)
        (gm2,) = ad.grad(total, [tm2])
        np.testing.assert_allclose(float(loss.data), float(total.data), rtol=1e-10)
        np.testing.assert_allclose(gm.data, gm2.data, atol=1e-12)
        assert obj.last_corner_losses.shape == (4, 1)

    def test_condition_memo_is_bounded(self, tiny_config, tiny_source):
        """Cached engines are shared module-wide; the per-focus memo must
        stay bounded however many focus values are ever requested."""
        from repro.optics.engine import CONDITION_MEMO_MAX

        engine = HopkinsImaging(tiny_config, tiny_source, num_kernels=4)
        for focus in np.linspace(5.0, 150.0, CONDITION_MEMO_MAX * 2):
            engine.condition_kernels((float(focus),))
        assert len(engine._condition_memo) <= CONDITION_MEMO_MAX
        # the engine's own condition (memo keys are canonical aberration
        # cache keys since the Zernike subsystem) is never evicted
        assert engine.aberration.cache_key in engine._condition_memo
        from repro.optics import SourceGrid

        abbe = AbbeImaging(
            tiny_config, source_grid=SourceGrid.from_config(tiny_config)
        )
        for focus in np.linspace(5.0, 150.0, CONDITION_MEMO_MAX * 2):
            abbe.condition_stacks((float(focus),))
        assert len(abbe._condition_memo) <= CONDITION_MEMO_MAX

    def test_hopkins_unfused_condition_stack_matches(
        self, tiny_config, tiny_source
    ):
        """fused=False Hopkins engines honor the flag on the condition
        axis: composed reference == fused stack, gradients included."""
        cfg = tiny_config
        fused = HopkinsImaging(cfg, tiny_source, num_kernels=6)
        composed = HopkinsImaging(cfg, tiny_source, num_kernels=6, fused=False)
        rng = np.random.default_rng(12)
        m = rng.random((cfg.mask_size,) * 2)
        outs = []
        for eng in (fused, composed):
            mt = ad.Tensor(m, requires_grad=True)
            stack = eng.aerial_conditions(mt, focus_values=(0.0, 45.0))
            (gm,) = ad.grad(F.sum(F.power(stack, 2.0)), [mt])
            outs.append((stack.data, gm.data))
        np.testing.assert_allclose(outs[0][0], outs[1][0], atol=1e-12)
        np.testing.assert_allclose(outs[0][1], outs[1][1], atol=1e-10)

    def test_engine_for_hopkins_defocus_cached(self, tiny_config, tiny_source):
        e1 = engine_for(tiny_config, "hopkins", source=tiny_source, defocus_nm=50.0)
        e2 = engine_for(tiny_config, "hopkins", source=tiny_source, defocus_nm=50.0)
        assert e1 is e2
        e3 = engine_for(tiny_config, "hopkins", source=tiny_source)
        assert e3 is not e1


# ----------------------------------------------------------------------
# robust solvers + harness report
# ----------------------------------------------------------------------
class TestRobustSolversAndHarness:
    def test_abbemo_with_window_improves_robust_loss(self, pw_setup):
        cfg, targets, source, _, _, window = pw_setup
        solver = AbbeMO(cfg, targets, source, process_window=window)
        result = solver.run(iterations=4)
        assert isinstance(solver.objective, ProcessWindowSMOObjective)
        assert result.losses[-1] < result.losses[0]
        # per-tile robust losses ride the records
        assert result.final_tile_losses.shape == (2,)

    def test_pvb_band_reduces_to_xor_for_two_corners(self, rng):
        cfg = OpticalConfig.preset("tiny")
        a = rng.random((cfg.mask_size,) * 2)
        b = rng.random((cfg.mask_size,) * 2)
        assert pvb_band_nm2(np.stack([a, b]), cfg) == pvb_nm2(a, b, cfg)
        with pytest.raises(ValueError):
            pvb_band_pixels(a)

    def test_evaluate_and_table(self, tiny_config, tiny_rects, tiny_source):
        from repro.harness import (
            RunSettings,
            evaluate_process_window,
            process_window_table,
            run_process_window,
        )

        cfg = tiny_config
        clip = Clip(
            name="unit",
            rects=tuple(tiny_rects),
            cd_nm=40,
            tile_nm=int(cfg.tile_nm),
        )
        window = ProcessWindow.from_grid((0.97, 1.03), (0.0, 60.0))
        settings = RunSettings(
            config=cfg, iterations=2, process_window=window
        )
        records = run_process_window(["Abbe-MO"], [clip], settings, "unit-ds")
        assert len(records) == 1
        rec = records[0]
        assert rec.corner_loss.shape == (4,)
        assert rec.corner_l2_nm2.shape == (4,)
        assert rec.band_nm2 >= 0.0
        assert rec.method == "Abbe-MO"
        table = process_window_table(records, value="l2")
        assert table.columns[-2:] == ["band_nm2", "robust"]
        assert len(table.rows) == 1
        with pytest.raises(KeyError):
            process_window_table(records, value="nope")

    def test_run_process_window_requires_window(self, tiny_config):
        from repro.harness import RunSettings, run_process_window

        with pytest.raises(ValueError):
            run_process_window(
                ["Abbe-MO"], [], RunSettings(config=tiny_config)
            )
