"""Tier-1 gate: the repository satisfies its own lint invariants.

This is the test that makes reprolint self-enforcing — any PR that
reintroduces a raw ``np.fft`` call, an undeclared env knob, an unlocked
memo write, an unseeded RNG, an ad-hoc thread pool, a library assert or
a drifted ``__all__`` fails here, with the offending locations in the
assertion message.  It runs the exact command CI's static-analysis job
runs: ``python -m repro.analysis src benchmarks examples``.

The mypy half of the static-analysis story is config-checked here
(section shape, typed-core coverage) and executed only where mypy is
installed — it is a dev/CI tool, not a runtime dependency.
"""

import configparser
import importlib.util
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import run_paths
from repro.analysis.reporters import render_text

REPO_ROOT = Path(__file__).resolve().parents[1]
LINT_TARGETS = ["src", "benchmarks", "examples"]


def test_repo_lints_clean():
    report = run_paths([Path(p) for p in LINT_TARGETS], root=REPO_ROOT)
    assert report.exit_code == 0, "\n" + render_text(report, show_waived=True)
    assert report.files_checked > 80  # the whole tree was actually scanned


def test_waivers_in_tree_all_carry_reasons():
    report = run_paths([Path(p) for p in LINT_TARGETS], root=REPO_ROOT)
    for finding in report.waived:
        assert finding.waiver_reason.strip(), finding


# ----------------------------------------------------------------------
# mypy wiring
# ----------------------------------------------------------------------
TYPED_CORE = [
    "mypy-repro.optics.fftlib",
    "mypy-repro.optics.config",
    "mypy-repro.optics.zernike",
    "mypy-repro.autodiff.*",
]


def _mypy_config() -> configparser.ConfigParser:
    parser = configparser.ConfigParser()
    parser.read(REPO_ROOT / "mypy.ini")
    return parser


def test_mypy_config_covers_typed_core():
    parser = _mypy_config()
    assert parser.get("mypy", "mypy_path") == "src"
    assert parser.getboolean("mypy", "ignore_errors")  # gradual adoption
    for section in TYPED_CORE:
        assert parser.has_section(section), section
        assert not parser.getboolean(section, "ignore_errors")
        assert parser.getboolean(section, "disallow_untyped_defs")
        assert parser.getboolean(section, "disallow_incomplete_defs")


@pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None and shutil.which("mypy") is None,
    reason="mypy is not installed (CI's static-analysis job runs it)",
)
def test_mypy_passes_on_typed_core():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--config-file", "mypy.ini", "src"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
