"""Tests for BatchedSMOObjective and the batched layout plumbing
(layouts.tile_stack, harness.batched_objective)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.harness import RunSettings, batched_objective
from repro.layouts import dataset_by_name, tile_stack
from repro.optics import OpticalConfig
from repro.smo import (
    AbbeSMOObjective,
    BatchedSMOObjective,
    init_theta_mask,
    init_theta_source,
)


@pytest.fixture(scope="module")
def cfg() -> OpticalConfig:
    return OpticalConfig.preset("tiny")


@pytest.fixture(scope="module")
def targets(cfg, tiny_target) -> np.ndarray:
    return np.stack([tiny_target, tiny_target.T, np.roll(tiny_target, 3, axis=0)])


@pytest.fixture(scope="module")
def thetas(cfg, targets, tiny_source):
    tj = init_theta_source(tiny_source, cfg)
    tm = np.stack([init_theta_mask(t, cfg) for t in targets])
    return tj, tm


class TestBatchedObjective:
    def test_loss_equals_sum_of_per_tile_losses(self, cfg, targets, thetas):
        tj, tm = thetas
        batched = BatchedSMOObjective(cfg, targets)
        with ad.no_grad():
            total = batched.loss(ad.Tensor(tj), ad.Tensor(tm)).item()
            per_tile = sum(
                AbbeSMOObjective(cfg, t).loss(ad.Tensor(tj), ad.Tensor(m)).item()
                for t, m in zip(targets, tm)
            )
        assert total == pytest.approx(per_tile, rel=1e-10)

    def test_mean_reduction(self, cfg, targets, thetas):
        tj, tm = thetas
        total = BatchedSMOObjective(cfg, targets, reduction="sum")
        mean = BatchedSMOObjective(cfg, targets, reduction="mean")
        with ad.no_grad():
            ratio = total.loss(ad.Tensor(tj), ad.Tensor(tm)).item() / mean.loss(
                ad.Tensor(tj), ad.Tensor(tm)
            ).item()
        assert ratio == pytest.approx(len(targets), rel=1e-12)

    def test_gradients_match_per_tile(self, cfg, targets, thetas):
        """One batched graph == B per-tile graphs, for both parameters."""
        tj, tm = thetas
        batched = BatchedSMOObjective(cfg, targets)
        a = ad.Tensor(tj, requires_grad=True)
        b = ad.Tensor(tm, requires_grad=True)
        gj, gm = ad.grad(batched.loss(a, b), [a, b])
        gj_sum = np.zeros_like(tj)
        for i, (t, m) in enumerate(zip(targets, tm)):
            ai = ad.Tensor(tj, requires_grad=True)
            bi = ad.Tensor(m, requires_grad=True)
            gji, gmi = ad.grad(AbbeSMOObjective(cfg, t).loss(ai, bi), [ai, bi])
            np.testing.assert_allclose(gm.data[i], gmi.data, atol=1e-6)
            gj_sum += gji.data
        np.testing.assert_allclose(gj.data, gj_sum, atol=1e-6)

    def test_tile_losses_vector(self, cfg, targets, thetas):
        tj, tm = thetas
        batched = BatchedSMOObjective(cfg, targets)
        per_tile = batched.tile_losses(tj, tm)
        assert per_tile.shape == (len(targets),)
        with ad.no_grad():
            total = batched.loss(ad.Tensor(tj), ad.Tensor(tm)).item()
        assert per_tile.sum() == pytest.approx(total, rel=1e-9)

    def test_images_shapes(self, cfg, targets, thetas):
        tj, tm = thetas
        images = BatchedSMOObjective(cfg, targets).images(tj, tm)
        b, n = len(targets), cfg.mask_size
        for key in ("aerial", "resist", "resist_min", "resist_max", "mask"):
            assert images[key].shape == (b, n, n), key
        assert images["source"].shape == (cfg.source_size,) * 2

    def test_shape_validation(self, cfg, targets, thetas):
        tj, tm = thetas
        with pytest.raises(ValueError):
            BatchedSMOObjective(cfg, targets[0])  # not a batch
        with pytest.raises(ValueError):
            BatchedSMOObjective(cfg, targets, reduction="median")
        batched = BatchedSMOObjective(cfg, targets)
        with pytest.raises(ValueError):
            batched.loss(ad.Tensor(tj), ad.Tensor(tm[:2]))  # wrong B


class TestTileStack:
    def test_shapes_and_binarization(self, cfg):
        ds = dataset_by_name("ICCAD13", num_clips=3)
        config = cfg.with_(tile_nm=2000.0, mask_size=64)
        stack = tile_stack(list(ds), config)
        assert stack.shape == (3, 64, 64)
        assert set(np.unique(stack)) <= {0.0, 1.0}
        np.testing.assert_array_equal(stack, ds.tile_stack(config))

    def test_tile_mismatch_raises(self, cfg):
        ds = dataset_by_name("ICCAD13", num_clips=1)
        with pytest.raises(ValueError):
            tile_stack(list(ds), cfg)  # tiny preset is a 500 nm tile

    def test_empty_raises(self, cfg):
        with pytest.raises(ValueError):
            tile_stack([], cfg)


class TestHarnessBatched:
    def test_batched_objective_helper(self):
        settings = RunSettings.preset("small", iterations=1)
        ds = dataset_by_name("ICCAD-L", num_clips=2)
        objective = batched_objective(list(ds), settings)
        assert objective.num_tiles == 2
        tj = init_theta_source(
            np.ones((settings.config.source_size,) * 2), settings.config
        )
        tm = np.stack(
            [init_theta_mask(t, settings.config) for t in objective.targets.data]
        )
        with ad.no_grad():
            assert objective.loss(ad.Tensor(tj), ad.Tensor(tm)).item() > 0

    def test_helper_shares_cached_engine(self):
        from repro.optics import cache

        settings = RunSettings.preset("small", iterations=1)
        ds = dataset_by_name("ICCAD13", num_clips=2)
        o1 = batched_objective(list(ds), settings)
        o2 = batched_objective(list(ds), settings)
        assert o1.engine is o2.engine
        assert o1.engine is cache.abbe_engine(settings.config)
