"""Bilevel hypergradient math on a quadratic toy with a closed form.

L(j, m) = 0.5 j^T A j + j^T B m + 0.5 m^T C m + d^T m   (A SPD)

Inner optimum: j*(m) = -A^{-1} B m.  The IFT hypergradient at any
evaluation point (j, m) is

    hyper = dL/dm - B^T A^{-1} dL/dj
          = (B^T j + C m + d) - B^T A^{-1} (A j + B m)

BiSMO-CG and safeguarded BiSMO-NMN must converge to this analytic value;
BiSMO-FD must equal the K=0 Neumann approximation.  These tests exercise
HypergradientContext and the three strategy functions exactly as the
real solver does, but on a problem whose answer we can write down.
"""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.smo.bismo import HypergradientContext
from repro.smo.cg import cg_hypergradient
from repro.smo.fd import fd_hypergradient
from repro.smo.nmn import neumann_hypergradient


class QuadraticObjective:
    """Duck-typed objective compatible with HypergradientContext."""

    def __init__(self, n=4, seed=0, curvature=1.0):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n))
        self.a = curvature * (a @ a.T + n * np.eye(n))  # SPD, well conditioned
        self.b = rng.standard_normal((n, n))
        c = rng.standard_normal((n, n))
        self.c = c @ c.T + n * np.eye(n)
        self.d = rng.standard_normal(n)
        self.n = n

    def loss(self, tj: ad.Tensor, tm: ad.Tensor) -> ad.Tensor:
        jc = F.reshape(tj, (self.n, 1))
        mc = F.reshape(tm, (self.n, 1))
        at, bt, ct = ad.Tensor(self.a), ad.Tensor(self.b), ad.Tensor(self.c)
        dt = ad.Tensor(self.d.reshape(self.n, 1))
        term_j = F.mul(F.sum(F.mul(jc, F.matmul(at, jc))), 0.5)
        term_jm = F.sum(F.mul(jc, F.matmul(bt, mc)))
        term_m = F.mul(F.sum(F.mul(mc, F.matmul(ct, mc))), 0.5)
        term_d = F.sum(F.mul(dt, mc))
        return F.add(F.add(term_j, term_jm), F.add(term_m, term_d))

    def analytic_hypergradient(self, j: np.ndarray, m: np.ndarray) -> np.ndarray:
        gm = self.b.T @ j + self.c @ m + self.d
        gj = self.a @ j + self.b @ m
        return gm - self.b.T @ np.linalg.solve(self.a, gj)


@pytest.fixture()
def toy():
    return QuadraticObjective(n=4, seed=3)


@pytest.fixture()
def point(toy):
    rng = np.random.default_rng(7)
    return rng.standard_normal(toy.n), rng.standard_normal(toy.n)


class TestContext:
    def test_first_order_grads(self, toy, point):
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        np.testing.assert_allclose(ctx.grad_j, toy.a @ j + toy.b @ m, atol=1e-10)
        np.testing.assert_allclose(
            ctx.grad_m, toy.b.T @ j + toy.c @ m + toy.d, atol=1e-10
        )

    def test_hvp_is_inner_hessian(self, toy, point):
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        v = np.random.default_rng(0).standard_normal(toy.n)
        np.testing.assert_allclose(ctx.hvp(v), toy.a @ v, atol=1e-10)

    def test_mixed_vjp_is_b_transpose(self, toy, point):
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        w = np.random.default_rng(1).standard_normal(toy.n)
        np.testing.assert_allclose(ctx.mixed_vjp(w), toy.b.T @ w, atol=1e-10)

    def test_fd_mode_matches_exact(self, toy, point):
        j, m = point
        exact = HypergradientContext(toy, j, m, hvp_mode="exact")
        fd = HypergradientContext(toy, j, m, hvp_mode="fd", fd_eps=1e-4)
        v = np.random.default_rng(2).standard_normal(toy.n)
        np.testing.assert_allclose(fd.hvp(v), exact.hvp(v), atol=1e-5)
        np.testing.assert_allclose(fd.mixed_vjp(v), exact.mixed_vjp(v), atol=1e-5)

    def test_invalid_mode(self, toy, point):
        with pytest.raises(ValueError):
            HypergradientContext(toy, point[0], point[1], hvp_mode="nope")

    def test_loss_value_recorded(self, toy, point):
        ctx = HypergradientContext(toy, point[0], point[1])
        with ad.no_grad():
            expected = toy.loss(ad.Tensor(point[0]), ad.Tensor(point[1])).item()
        assert ctx.loss_value == pytest.approx(expected)


class TestHypergradientStrategies:
    def test_cg_converges_to_analytic(self, toy, point):
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        hyper, w = cg_hypergradient(ctx, 0.1, terms=toy.n + 2, damping=0.0, warm=None)
        np.testing.assert_allclose(
            hyper, toy.analytic_hypergradient(j, m), atol=1e-8
        )

    def test_cg_warm_start_improves(self, toy, point):
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        # one CG step cold vs one CG step warm-started from the true solve
        v = ctx.grad_j
        w_true = np.linalg.solve(toy.a, v)
        h_cold, _ = cg_hypergradient(ctx, 0.1, terms=1, damping=0.0, warm=None)
        h_warm, _ = cg_hypergradient(ctx, 0.1, terms=1, damping=0.0, warm=w_true)
        truth = toy.analytic_hypergradient(j, m)
        assert np.linalg.norm(h_warm - truth) <= np.linalg.norm(h_cold - truth) + 1e-12

    def test_nmn_converges_with_many_terms(self, toy, point):
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        hyper, _ = neumann_hypergradient(ctx, 0.1, terms=400, damping=0.0, warm=None)
        np.testing.assert_allclose(
            hyper, toy.analytic_hypergradient(j, m), atol=1e-5
        )

    def test_nmn_zero_terms_equals_fd(self, toy, point):
        """Section 3.2.4: K = 0 Neumann == finite-difference strategy."""
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        h_nmn, _ = neumann_hypergradient(ctx, 0.1, terms=0, damping=0.0, warm=None)
        h_fd, _ = fd_hypergradient(ctx, 0.1, terms=0, damping=0.0, warm=None)
        np.testing.assert_allclose(h_nmn, h_fd, atol=1e-12)

    def test_fd_formula(self, toy, point):
        """Eq. (13): hyper = gM - xi * B^T gJ for the quadratic toy."""
        j, m = point
        ctx = HypergradientContext(toy, j, m)
        hyper, _ = fd_hypergradient(ctx, 0.1, terms=0, damping=0.0, warm=None)
        gj = toy.a @ j + toy.b @ m
        gm = toy.b.T @ j + toy.c @ m + toy.d
        np.testing.assert_allclose(hyper, gm - 0.1 * (toy.b.T @ gj), atol=1e-10)

    def test_nmn_safeguard_on_stiff_hessian(self, point):
        """With curvature >> 1/xi the raw series would diverge; the
        spectral safeguard must keep the hypergradient finite and close
        to analytic."""
        stiff = QuadraticObjective(n=4, seed=3, curvature=500.0)
        j, m = point
        ctx = HypergradientContext(stiff, j, m)
        hyper, _ = neumann_hypergradient(ctx, 0.1, terms=200, damping=0.0, warm=None)
        assert np.all(np.isfinite(hyper))
        truth = stiff.analytic_hypergradient(j, m)
        # truncated series with a safe small step: approximate, same scale
        assert np.linalg.norm(hyper - truth) < np.linalg.norm(truth)

    def test_all_methods_agree_near_inner_optimum(self, toy):
        """At j = j*(m), all three give descent-compatible directions and
        NMN/CG agree with analytic closely."""
        rng = np.random.default_rng(9)
        m = rng.standard_normal(toy.n)
        j_star = -np.linalg.solve(toy.a, toy.b @ m)
        ctx = HypergradientContext(toy, j_star, m)
        truth = toy.analytic_hypergradient(j_star, m)
        h_cg, _ = cg_hypergradient(ctx, 0.1, terms=toy.n + 2, damping=0.0, warm=None)
        h_nm, _ = neumann_hypergradient(ctx, 0.1, terms=300, damping=0.0, warm=None)
        np.testing.assert_allclose(h_cg, truth, atol=1e-8)
        np.testing.assert_allclose(h_nm, truth, atol=1e-4)
