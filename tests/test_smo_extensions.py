"""Tests for the SMO extensions: unrolled hypergradients, stoppers,
LR schedules, defocus imaging."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.opt import Adam, ConstantLR, CosineLR, SGD, StepLR, apply_schedule
from repro.optics import AbbeImaging, OpticalConfig
from repro.smo import (
    AbbeSMOObjective,
    BiSMO,
    GradientNormStopper,
    PlateauStopper,
    RelativeImprovementStopper,
    init_theta_mask,
    init_theta_source,
    unrolled_hypergradient,
)
from tests.test_smo_bilevel_math import QuadraticObjective


class TestUnrolledHypergradient:
    def test_quadratic_unroll_matches_manual(self):
        """One unrolled SGD step on the quadratic toy has the closed form
        hyper = gm(j', m) + d j'/dm ^T gj(j', m) with
        j' = j - xi (A j + B m)  and  d j'/dm = -xi B."""
        toy = QuadraticObjective(n=3, seed=5)
        rng = np.random.default_rng(11)
        j, m = rng.standard_normal(3), rng.standard_normal(3)
        xi = 0.05
        hyper, j_new, loss = unrolled_hypergradient(toy, j, m, steps=1, inner_lr=xi)
        j_prime = j - xi * (toy.a @ j + toy.b @ m)
        np.testing.assert_allclose(j_new, j_prime, atol=1e-12)
        gm = toy.b.T @ j_prime + toy.c @ m + toy.d
        gj = toy.a @ j_prime + toy.b @ m
        expected = gm - xi * toy.b.T @ gj
        np.testing.assert_allclose(hyper, expected, atol=1e-10)

    def test_zero_steps_rejected(self):
        toy = QuadraticObjective(n=2)
        with pytest.raises(ValueError):
            unrolled_hypergradient(toy, np.zeros(2), np.zeros(2), 0, 0.1)

    def test_bismo_unroll_variant_decreases_loss(
        self, tiny_config, tiny_target, tiny_source
    ):
        objective = AbbeSMOObjective(tiny_config, tiny_target)
        solver = BiSMO(
            tiny_config, tiny_target, method="unroll", unroll_steps=2,
            objective=objective,
        )
        res = solver.run(tiny_source, iterations=10)
        assert res.method == "BiSMO-UNROLL"
        assert res.final_loss < res.losses[0]

    def test_unroll_in_method_error_message(self, tiny_config, tiny_target):
        with pytest.raises(KeyError, match="unroll"):
            BiSMO(tiny_config, tiny_target, method="bogus")


class TestStoppers:
    def test_plateau_stops_after_patience(self):
        stop = PlateauStopper(patience=3)
        assert not stop.update(10.0)
        assert not stop.update(10.0)
        assert not stop.update(10.0)
        assert stop.update(10.0)

    def test_plateau_resets_on_improvement(self):
        stop = PlateauStopper(patience=2)
        stop.update(10.0)
        stop.update(10.0)
        assert not stop.update(5.0)  # improvement resets
        assert not stop.update(5.0)
        assert stop.update(5.0)

    def test_plateau_min_delta(self):
        stop = PlateauStopper(patience=1, min_delta=1.0)
        stop.update(10.0)
        assert stop.update(9.5)  # improvement below min_delta doesn't count

    def test_plateau_reset(self):
        stop = PlateauStopper(patience=1)
        stop.update(1.0)
        stop.update(1.0)
        stop.reset()
        assert not stop.update(1.0)

    def test_plateau_validation(self):
        with pytest.raises(ValueError):
            PlateauStopper(patience=0)

    def test_relative_improvement(self):
        stop = RelativeImprovementStopper(rtol=0.01, patience=2)
        assert not stop.update(100.0)
        assert not stop.update(50.0)  # 50% improvement
        assert not stop.update(49.9)  # 0.2% — slow strike 1
        assert stop.update(49.9)  # slow strike 2 -> stop

    def test_relative_improvement_fires_at_exact_zero(self):
        """A run that bottoms out at loss == 0 must still stop: a zero
        previous loss counts as plateau progress, not a skipped test."""
        stop = RelativeImprovementStopper(rtol=0.01, patience=2)
        assert not stop.update(1.0)
        assert not stop.update(0.0)  # huge improvement -> not slow
        assert not stop.update(0.0)  # zero prev: plateau strike 1
        assert stop.update(0.0)  # plateau strike 2 -> stop

    def test_relative_improvement_negative_prev_counts_as_plateau(self):
        stop = RelativeImprovementStopper(rtol=0.01, patience=1)
        stop.update(-5.0)
        assert stop.update(-5.0)

    def test_relative_improvement_reset_clears_zero_state(self):
        stop = RelativeImprovementStopper(rtol=0.01, patience=1)
        stop.update(0.0)
        stop.reset()
        assert not stop.update(0.0)  # first update never stops

    def test_gradient_norm(self):
        stop = GradientNormStopper(threshold=0.1)
        assert not stop.update(np.array([1.0, 1.0]))
        assert stop.update(np.array([0.01, 0.01]))
        assert stop.last_norm == pytest.approx(np.hypot(0.01, 0.01))

    def test_gradient_norm_validation(self):
        with pytest.raises(ValueError):
            GradientNormStopper(0.0)


class TestLRSchedules:
    def test_constant(self):
        s = ConstantLR(0.1)
        assert s(0) == s(100) == 0.1

    def test_step_decay(self):
        s = StepLR(1.0, period=10, gamma=0.5)
        assert s(0) == 1.0
        assert s(9) == 1.0
        assert s(10) == 0.5
        assert s(20) == 0.25

    def test_cosine_endpoints(self):
        s = CosineLR(1.0, total=100, floor=0.1)
        assert s(0) == pytest.approx(1.0)
        assert s(100) == pytest.approx(0.1)
        assert s(200) == pytest.approx(0.1)  # clamped past total
        assert s(50) == pytest.approx(0.55)

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            StepLR(1.0, period=0)
        with pytest.raises(ValueError):
            CosineLR(1.0, total=10, floor=2.0)

    def test_apply_schedule_mutates_optimizer(self):
        opt = SGD(1.0)
        lr = apply_schedule(opt, CosineLR(1.0, total=10, floor=0.05), step=10)
        assert opt.lr == lr == pytest.approx(0.05)
        opt2 = Adam(1.0)
        apply_schedule(opt2, StepLR(1.0, 5, 0.5), step=5)
        assert opt2.lr == 0.5

    def test_apply_schedule_rejects_zero_lr(self):
        opt = SGD(1.0)
        with pytest.raises(ValueError):
            apply_schedule(opt, CosineLR(1.0, total=10, floor=0.0), step=10)


class TestDefocusImaging:
    def test_zero_defocus_matches_baseline(self, tiny_config, tiny_target, tiny_source):
        base = AbbeImaging(tiny_config)
        zero = AbbeImaging(tiny_config, defocus_nm=0.0)
        with ad.no_grad():
            i0 = base.aerial(ad.Tensor(tiny_target), ad.Tensor(tiny_source)).data
            i1 = zero.aerial(ad.Tensor(tiny_target), ad.Tensor(tiny_source)).data
        np.testing.assert_allclose(i0, i1)

    def test_defocus_symmetric_in_sign(self, tiny_config, tiny_target, tiny_source):
        """+z and -z defocus give the same intensity for a real mask and
        this symmetric (aberration-free) pupil."""
        plus = AbbeImaging(tiny_config, defocus_nm=100.0)
        minus = AbbeImaging(tiny_config, defocus_nm=-100.0)
        with ad.no_grad():
            ip = plus.aerial(ad.Tensor(tiny_target), ad.Tensor(tiny_source)).data
            im = minus.aerial(ad.Tensor(tiny_target), ad.Tensor(tiny_source)).data
        np.testing.assert_allclose(ip, im, atol=1e-10)

    def test_defocus_gradients_still_flow(self, tiny_config, tiny_target, tiny_source):
        engine = AbbeImaging(tiny_config, defocus_nm=80.0)
        m = ad.Tensor(tiny_target, requires_grad=True)
        s = ad.Tensor(tiny_source + 0.05, requires_grad=True)
        from repro.autodiff import functional as F

        gm, gs = ad.grad(F.sum(engine.aerial(m, s)), [m, s])
        assert np.all(np.isfinite(gm.data))
        assert np.all(np.isfinite(gs.data))

    def test_defocus_preserves_energy_of_clear_field(self, tiny_config, tiny_source):
        """Defocus is a pure phase factor: the DC (clear-field) response
        is unchanged."""
        engine = AbbeImaging(tiny_config, defocus_nm=120.0)
        assert engine.clear_field_intensity(tiny_source) == pytest.approx(1.0, abs=1e-6)


class TestGLPDatasetLoader:
    def test_roundtrip_directory(self, tmp_path):
        from repro.geometry import Rect
        from repro.layouts import dataset_from_glp_dir, write_glp

        write_glp(tmp_path / "a.glp", "clip_a", {"M1": [Rect(0, 0, 100, 50)]})
        write_glp(
            tmp_path / "b.glp",
            "clip_b",
            {"M1": [Rect(0, 0, 60, 60)], "VIA": [Rect(10, 10, 40, 40)]},
        )
        ds = dataset_from_glp_dir(tmp_path, "REAL", cd_nm=32, tile_nm=2000)
        assert len(ds) == 2
        assert ds[0].name == "clip_a"
        assert len(ds[1].rects) == 2  # layers merged

    def test_empty_dir_raises(self, tmp_path):
        from repro.layouts import dataset_from_glp_dir

        with pytest.raises(FileNotFoundError):
            dataset_from_glp_dir(tmp_path, "X", cd_nm=32)
