"""Joint multi-clip solver tests: batched-vs-looped equivalence for the
bilevel and alternating solvers, per-tile loss records, the FFT-free
source-only HVP oracle, and the unroll inner-optimizer guard."""

from __future__ import annotations

import numpy as np
import pytest

import repro.autodiff as ad
from repro.optics import OpticalConfig
from repro.smo import (
    AMSMO,
    AbbeMO,
    AbbeSMOObjective,
    BatchedSMOObjective,
    BiSMO,
    HopkinsMO,
    HopkinsMOObjective,
    HypergradientContext,
    LoopedSMOObjective,
    SourceOptimizer,
    init_theta_mask,
    init_theta_source,
    unrolled_hypergradient,
)
from repro.baselines import MultiLevelILT, NILTBaseline


@pytest.fixture(scope="module")
def targets(tiny_target) -> np.ndarray:
    """B=3 clip stack: the base tile plus two distinct variants."""
    return np.stack(
        [tiny_target, tiny_target.T, np.roll(tiny_target, 3, axis=0)]
    )


@pytest.fixture(scope="module")
def cfg(tiny_config) -> OpticalConfig:
    return tiny_config


class TestBatchedLoopedEquivalence:
    """The fused batched execution must reproduce the per-clip loop."""

    @pytest.mark.parametrize("method", ["nmn", "fd", "cg"])
    def test_bismo_matches_per_clip_loop(self, method, cfg, targets, tiny_source):
        results = {}
        for name, obj_cls in (
            ("batched", BatchedSMOObjective),
            ("looped", LoopedSMOObjective),
        ):
            solver = BiSMO(
                cfg,
                targets,
                method=method,
                unroll_steps=2,
                terms=3,
                damping=1.0 if method == "cg" else 0.0,
                objective=obj_cls(cfg, targets),
            )
            results[name] = solver.run(tiny_source, iterations=4)
        b, l = results["batched"], results["looped"]
        np.testing.assert_allclose(
            b.final_tile_losses, l.final_tile_losses, rtol=1e-10
        )
        np.testing.assert_allclose(b.theta_m, l.theta_m, atol=1e-10)
        np.testing.assert_allclose(b.theta_j, l.theta_j, atol=1e-10)

    def test_amsmo_matches_per_clip_loop(self, cfg, targets, tiny_source):
        results = {}
        for name, obj_cls in (
            ("batched", BatchedSMOObjective),
            ("looped", LoopedSMOObjective),
        ):
            solver = AMSMO(
                cfg,
                targets,
                rounds=2,
                so_steps=2,
                mo_steps=3,
                objective=obj_cls(cfg, targets),
            )
            results[name] = solver.run(tiny_source)
        b, l = results["batched"], results["looped"]
        np.testing.assert_allclose(
            b.final_tile_losses, l.final_tile_losses, rtol=1e-10
        )
        np.testing.assert_allclose(b.theta_m, l.theta_m, atol=1e-10)

    def test_batched_loss_equals_looped_loss(self, cfg, targets, tiny_source):
        tj = init_theta_source(tiny_source, cfg)
        tm = np.stack([init_theta_mask(t, cfg) for t in targets])
        with ad.no_grad():
            lb = BatchedSMOObjective(cfg, targets).loss(
                ad.Tensor(tj), ad.Tensor(tm)
            ).item()
            ll = LoopedSMOObjective(cfg, targets).loss(
                ad.Tensor(tj), ad.Tensor(tm)
            ).item()
        assert lb == pytest.approx(ll, rel=1e-12)


class TestPerTileRecords:
    def test_bismo_records_tile_losses(self, cfg, targets, tiny_source):
        res = BiSMO(
            cfg, targets, method="nmn", unroll_steps=1, terms=2
        ).run(tiny_source, iterations=3)
        assert res.num_tiles == len(targets)
        matrix = res.tile_loss_matrix()
        assert matrix.shape == (3, len(targets))
        # per-tile losses sum to the recorded total loss
        for rec in res.history:
            assert rec.tile_losses.sum() == pytest.approx(rec.loss, rel=1e-9)
        np.testing.assert_array_equal(res.final_tile_losses, matrix[-1])

    def test_single_tile_records_no_tile_losses(self, cfg, tiny_target, tiny_source):
        res = BiSMO(
            cfg, tiny_target, method="fd", unroll_steps=1
        ).run(tiny_source, iterations=2)
        assert res.num_tiles == 1
        assert all(r.tile_losses is None for r in res.history)
        with pytest.raises(ValueError):
            res.tile_loss_matrix()
        with pytest.raises(ValueError):
            _ = res.final_tile_losses

    def test_amsmo_phases_record_tile_losses(self, cfg, targets, tiny_source):
        res = AMSMO(cfg, targets, rounds=1, so_steps=2, mo_steps=2).run(
            tiny_source
        )
        assert all(r.tile_losses is not None for r in res.history)
        assert {r.phase for r in res.history} == {"so", "mo"}

    def test_amsmo_hopkins_joint(self, cfg, targets, tiny_source):
        res = AMSMO(
            cfg,
            targets,
            mode="abbe-hopkins",
            rounds=1,
            so_steps=1,
            mo_steps=2,
            num_kernels=8,
        ).run(tiny_source)
        assert res.theta_m.shape == targets.shape
        assert res.history[-1].tile_losses.shape == (len(targets),)

    @pytest.mark.parametrize(
        "make",
        [
            lambda cfg, t, s: AbbeMO(cfg, t, s),
            lambda cfg, t, s: HopkinsMO(cfg, t, s, num_kernels=8),
            lambda cfg, t, s: NILTBaseline(cfg, t, s, num_kernels=8),
            lambda cfg, t, s: MultiLevelILT(cfg, t, s, num_kernels=8),
        ],
    )
    def test_mo_solvers_accept_clip_stacks(self, make, cfg, targets, tiny_source):
        res = make(cfg, targets, tiny_source).run(iterations=2)
        assert res.theta_m.shape == targets.shape
        assert res.num_tiles == len(targets)
        assert res.final_tile_losses.shape == (len(targets),)
        assert np.isfinite(res.final_tile_losses).all()

    def test_source_optimizer_joint(self, cfg, targets, tiny_source):
        so = SourceOptimizer(cfg, targets)
        tm = np.stack([init_theta_mask(t, cfg) for t in targets])
        res = so.run(tm, init_theta_source(tiny_source, cfg), iterations=2)
        assert res.history[-1].tile_losses.shape == (len(targets),)


class TestSourceOnlyOracle:
    """The FFT-free source-only closure must be exactly the loss as a
    function of theta_J at fixed theta_M."""

    def test_closure_matches_full_loss(self, cfg, targets, tiny_source):
        objective = BatchedSMOObjective(cfg, targets)
        tj = init_theta_source(tiny_source, cfg)
        tm = np.stack([init_theta_mask(t, cfg) for t in targets]) + 0.1
        closure = objective.source_only_loss(tm)
        with ad.no_grad():
            full = objective.loss(ad.Tensor(tj), ad.Tensor(tm)).item()
            fast = closure(ad.Tensor(tj)).item()
        assert fast == pytest.approx(full, rel=1e-12)

    def test_oracle_hvp_matches_full_graph(self, cfg, targets, tiny_source):
        rng = np.random.default_rng(7)
        tj = init_theta_source(tiny_source, cfg) + 0.01 * rng.standard_normal(
            (cfg.source_size,) * 2
        )
        tm = np.stack([init_theta_mask(t, cfg) for t in targets])
        ctx_fast = HypergradientContext(BatchedSMOObjective(cfg, targets), tj, tm)
        ctx_full = HypergradientContext(LoopedSMOObjective(cfg, targets), tj, tm)
        assert ctx_fast._so_gj_graph is not None
        assert ctx_full._so_gj_graph is None
        p = rng.standard_normal(tj.shape)
        hv_fast, hv_full = ctx_fast.hvp(p), ctx_full.hvp(p)
        np.testing.assert_allclose(hv_fast, hv_full, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(
            ctx_fast.grad_j, ctx_full.grad_j, rtol=1e-9, atol=1e-12
        )

    def test_hopkins_objective_has_no_oracle(self, cfg, targets, tiny_source):
        hop = HopkinsMOObjective(cfg, targets, tiny_source, num_kernels=8)
        assert not hasattr(hop, "source_only_loss")


class TestHopkinsBatchedObjective:
    def test_batched_loss_and_tile_losses(self, cfg, targets, tiny_source):
        hop = HopkinsMOObjective(cfg, targets, tiny_source, num_kernels=8)
        assert hop.num_tiles == len(targets)
        tm = np.stack([init_theta_mask(t, cfg) for t in targets])
        with ad.no_grad():
            total = hop.loss(ad.Tensor(tm)).item()
        assert hop.last_tile_losses.sum() == pytest.approx(total, rel=1e-9)
        per_tile = hop.tile_losses(tm)
        np.testing.assert_allclose(per_tile, hop.last_tile_losses, rtol=1e-9)

    def test_shape_validation(self, cfg, targets):
        hop_single = HopkinsMOObjective(
            cfg, targets[0], np.ones((cfg.source_size,) * 2), num_kernels=4
        )
        with pytest.raises(ValueError):
            hop_single.tile_losses(init_theta_mask(targets[0], cfg))
        hop = HopkinsMOObjective(
            cfg, targets, np.ones((cfg.source_size,) * 2), num_kernels=4
        )
        with pytest.raises(ValueError):
            with ad.no_grad():
                hop.loss(ad.Tensor(init_theta_mask(targets[0], cfg)))
        with pytest.raises(ValueError):
            HopkinsMOObjective(
                cfg,
                np.zeros((4,)),
                np.ones((cfg.source_size,) * 2),
            )


class TestUnrollInnerOptimizerGuard:
    def test_bismo_unroll_rejects_stateful_inner_optimizer(self, cfg, tiny_target):
        with pytest.raises(ValueError, match="inner_optimizer"):
            BiSMO(cfg, tiny_target, method="unroll", inner_optimizer="adam")

    def test_unrolled_hypergradient_rejects_non_sgd(self, cfg, tiny_target, tiny_source):
        objective = AbbeSMOObjective(cfg, tiny_target)
        tj = init_theta_source(tiny_source, cfg)
        tm = init_theta_mask(tiny_target, cfg)
        with pytest.raises(ValueError, match="sgd"):
            unrolled_hypergradient(
                objective, tj, tm, steps=1, inner_lr=0.1, inner_optimizer="adam"
            )

    def test_unroll_with_sgd_still_runs(self, cfg, tiny_target, tiny_source):
        res = BiSMO(
            cfg, tiny_target, method="unroll", unroll_steps=1, inner_optimizer="sgd"
        ).run(tiny_source, iterations=2)
        assert np.isfinite(res.losses).all()

    def test_unroll_joint_records_tile_losses(self, cfg, targets, tiny_source):
        res = BiSMO(cfg, targets, method="unroll", unroll_steps=1).run(
            tiny_source, iterations=2
        )
        assert res.history[-1].tile_losses.shape == (len(targets),)
