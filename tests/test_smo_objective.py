"""Tests for the SMO loss (Eqs. (7)-(9)) and dose handling."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.optics import AbbeImaging, OpticalConfig
from repro.smo import (
    AbbeSMOObjective,
    HopkinsMOObjective,
    dose_resist,
    init_theta_mask,
    init_theta_source,
    mask_from_theta,
    smo_loss_from_aerial,
    source_from_theta,
)


@pytest.fixture(scope="module")
def cfg():
    return OpticalConfig.preset("tiny")


@pytest.fixture(scope="module")
def objective(cfg, tiny_target):
    return AbbeSMOObjective(cfg, tiny_target)


@pytest.fixture(scope="module")
def thetas(cfg, tiny_target, tiny_source):
    return (
        init_theta_source(tiny_source, cfg),
        init_theta_mask(tiny_target, cfg),
    )


class TestDoseEquivalence:
    def test_dose_resist_equals_explicit_mask_scaling(self, cfg, objective, thetas):
        """sigmoid(beta(d^2 I - tr)) == imaging d*M explicitly (Eq. (8))."""
        tj, tm = thetas
        engine = objective.engine
        with ad.no_grad():
            src = source_from_theta(ad.Tensor(tj), cfg)
            mask = mask_from_theta(ad.Tensor(tm), cfg)
            aerial = engine.aerial(mask, src)
            fast = dose_resist(aerial, cfg, cfg.dose_min).data
            scaled = engine.aerial(F.mul(mask, cfg.dose_min), src)
            explicit = F.sigmoid(
                F.mul(F.sub(scaled, cfg.intensity_threshold), cfg.beta)
            ).data
        np.testing.assert_allclose(fast, explicit, atol=1e-12)

    def test_nominal_dose_identity(self, cfg):
        aerial = ad.Tensor(np.random.default_rng(0).random((4, 4)))
        z = dose_resist(aerial, cfg, 1.0)
        z2 = dose_resist(aerial, cfg, 1.0 + 1e-16)
        np.testing.assert_allclose(z.data, z2.data, atol=1e-12)

    def test_dose_ordering(self, cfg):
        """Higher dose prints more: Z_max >= Z_nom >= Z_min everywhere."""
        aerial = ad.Tensor(np.random.default_rng(1).random((8, 8)))
        z_min = dose_resist(aerial, cfg, cfg.dose_min).data
        z_nom = dose_resist(aerial, cfg, 1.0).data
        z_max = dose_resist(aerial, cfg, cfg.dose_max).data
        assert np.all(z_max >= z_nom - 1e-12)
        assert np.all(z_nom >= z_min - 1e-12)


class TestLossStructure:
    def test_loss_weights(self, cfg):
        """L = gamma*L2 + eta*PVB with the paper's gamma/eta."""
        aerial = ad.Tensor(np.random.default_rng(0).random((6, 6)))
        target = ad.Tensor((np.random.default_rng(1).random((6, 6)) > 0.5).astype(float))
        loss = smo_loss_from_aerial(aerial, target, cfg).item()
        z = dose_resist(aerial, cfg, 1.0).data
        zmin = dose_resist(aerial, cfg, cfg.dose_min).data
        zmax = dose_resist(aerial, cfg, cfg.dose_max).data
        l2 = ((z - target.data) ** 2).sum()
        pvb = ((zmax - target.data) ** 2).sum() + ((zmin - target.data) ** 2).sum()
        assert loss == pytest.approx(cfg.gamma * l2 + cfg.eta * pvb, rel=1e-12)

    def test_loss_positive(self, objective, thetas):
        tj, tm = thetas
        with ad.no_grad():
            loss = objective.loss(ad.Tensor(tj), ad.Tensor(tm)).item()
        assert loss > 0

    def test_gradients_flow_to_both_levels(self, objective, thetas):
        tj, tm = thetas
        a = ad.Tensor(tj, requires_grad=True)
        b = ad.Tensor(tm, requires_grad=True)
        gj, gm = ad.grad(objective.loss(a, b), [a, b])
        assert np.abs(gj.data).max() > 0
        assert np.abs(gm.data).max() > 0

    def test_target_shape_mismatch_raises(self, cfg):
        with pytest.raises(ValueError):
            AbbeSMOObjective(cfg, np.zeros((4, 4)))

    def test_images_keys(self, objective, thetas):
        tj, tm = thetas
        images = objective.images(tj, tm)
        assert set(images) == {
            "source",
            "mask",
            "aerial",
            "resist",
            "resist_min",
            "resist_max",
            "target",
        }
        assert images["resist"].shape == images["target"].shape


class TestHopkinsObjective:
    def test_loss_and_gradient(self, cfg, tiny_target, tiny_source):
        obj = HopkinsMOObjective(cfg, tiny_target, tiny_source, num_kernels=8)
        tm = ad.Tensor(init_theta_mask(tiny_target, cfg), requires_grad=True)
        loss = obj.loss(tm)
        (g,) = ad.grad(loss, [tm])
        assert loss.item() > 0
        assert np.abs(g.data).max() > 0

    def test_rebuild_source_changes_loss(self, cfg, tiny_target, tiny_source):
        from repro.optics import SourceGrid, conventional

        obj = HopkinsMOObjective(cfg, tiny_target, tiny_source, num_kernels=8)
        tm = ad.Tensor(init_theta_mask(tiny_target, cfg))
        with ad.no_grad():
            l1 = obj.loss(tm).item()
        grid = SourceGrid.from_config(cfg)
        obj.rebuild_source(conventional(grid, 0.5))
        with ad.no_grad():
            l2 = obj.loss(tm).item()
        assert l1 != l2

    def test_images(self, cfg, tiny_target, tiny_source):
        obj = HopkinsMOObjective(cfg, tiny_target, tiny_source, num_kernels=8)
        images = obj.images(init_theta_mask(tiny_target, cfg))
        assert "resist" in images and "aerial" in images
