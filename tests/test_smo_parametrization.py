"""Tests for Table 1 parametrizations and initializations."""

import numpy as np
import pytest

import repro.autodiff as ad
from repro.optics import OpticalConfig
from repro.smo import (
    cosine_activation,
    init_theta_mask,
    init_theta_source,
    mask_from_theta,
    mask_from_theta_cosine,
    source_from_theta,
)


@pytest.fixture(scope="module")
def cfg():
    return OpticalConfig.preset("tiny")


class TestMaskParametrization:
    def test_init_signs(self, cfg):
        target = np.array([[1.0, 0.0], [0.0, 1.0]])
        theta = init_theta_mask(target, cfg)
        np.testing.assert_allclose(theta, [[cfg.m0, -cfg.m0], [-cfg.m0, cfg.m0]])

    def test_initial_mask_tracks_target(self, cfg):
        target = (np.random.default_rng(0).random((8, 8)) > 0.5).astype(float)
        theta = init_theta_mask(target, cfg)
        mask = mask_from_theta(ad.Tensor(theta), cfg).data
        np.testing.assert_array_equal(mask >= 0.5, target >= 0.5)

    def test_mask_near_binary_at_init(self, cfg):
        # sigmoid(alpha_m * m0) = sigmoid(9) ~ 0.99988
        theta = init_theta_mask(np.ones((2, 2)), cfg)
        mask = mask_from_theta(ad.Tensor(theta), cfg).data
        assert np.all(mask > 0.999)

    def test_mask_range(self, cfg):
        theta = ad.Tensor(np.linspace(-10, 10, 21))
        mask = mask_from_theta(theta, cfg).data
        assert mask.min() >= 0.0
        assert mask.max() <= 1.0


class TestSourceParametrization:
    def test_init_signs(self, cfg):
        template = np.array([[1.0, 0.0]])
        theta = init_theta_source(template, cfg)
        np.testing.assert_allclose(theta, [[cfg.j0, -cfg.j0]])

    def test_grayscale_near_extremes_at_init(self, cfg):
        # sigmoid(alpha_j * j0) = sigmoid(10) ~ 0.99995
        theta = init_theta_source(np.array([[1.0, 0.0]]), cfg)
        src = source_from_theta(ad.Tensor(theta), cfg).data
        assert src[0, 0] > 0.9999
        assert src[0, 1] < 0.0001

    def test_source_remains_trainable(self, cfg):
        """Gradient at the initialized value is small but nonzero."""
        theta = ad.Tensor(
            init_theta_source(np.ones((2, 2)), cfg), requires_grad=True
        )
        out = source_from_theta(theta, cfg)
        (g,) = ad.grad(out.sum(), [theta])
        assert np.all(g.data > 0)


class TestCosineAblation:
    def test_range(self, cfg):
        theta = ad.Tensor(np.linspace(-5, 5, 50))
        out = cosine_activation(theta, cfg.alpha_m).data
        assert out.min() >= 0.0
        assert out.max() <= 1.0

    def test_periodic_gradient_vanishes(self, cfg):
        """The instability the paper cites: gradient zeros at k*pi/alpha."""
        theta = ad.Tensor(np.array([np.pi / cfg.alpha_m]), requires_grad=True)
        out = cosine_activation(theta, cfg.alpha_m)
        (g,) = ad.grad(out.sum(), [theta])
        assert abs(g.data[0]) < 1e-12

    def test_mask_variant(self, cfg):
        theta = ad.Tensor(np.zeros((2, 2)))
        np.testing.assert_allclose(mask_from_theta_cosine(theta, cfg).data, 0.0)
