"""Integration tests: every solver must run and make progress on the
tiny optical problem; structural checks on histories and results."""

import numpy as np
import pytest

from repro.optics import OpticalConfig
from repro.smo import (
    AMSMO,
    AbbeMO,
    AbbeSMOObjective,
    BiSMO,
    HopkinsMO,
    SMOResult,
    SourceOptimizer,
    init_theta_mask,
    init_theta_source,
)


@pytest.fixture(scope="module")
def objective(tiny_config, tiny_target):
    return AbbeSMOObjective(tiny_config, tiny_target)


class TestMOOnly:
    def test_abbe_mo_decreases_loss(self, tiny_config, tiny_target, tiny_source, objective):
        res = AbbeMO(
            tiny_config, tiny_target, tiny_source, objective=objective
        ).run(iterations=12)
        assert res.final_loss < res.losses[0]
        assert res.method == "Abbe-MO"
        assert res.theta_j is not None  # fixed source recorded

    def test_hopkins_mo_decreases_loss(self, tiny_config, tiny_target, tiny_source):
        res = HopkinsMO(
            tiny_config, tiny_target, tiny_source, num_kernels=8
        ).run(iterations=12)
        assert res.final_loss < res.losses[0]
        assert res.theta_j is None

    def test_custom_initialization(self, tiny_config, tiny_target, tiny_source, objective):
        theta0 = init_theta_mask(tiny_target, tiny_config) + 0.05
        res = AbbeMO(
            tiny_config, tiny_target, tiny_source, objective=objective
        ).run(iterations=2, theta_m0=theta0)
        assert res.theta_m.shape == theta0.shape

    def test_callback_invoked(self, tiny_config, tiny_target, tiny_source, objective):
        seen = []
        AbbeMO(tiny_config, tiny_target, tiny_source, objective=objective).run(
            iterations=3, callback=seen.append
        )
        assert len(seen) == 3
        assert seen[0].iteration == 0

    def test_history_timing_positive(self, tiny_config, tiny_target, tiny_source, objective):
        res = AbbeMO(
            tiny_config, tiny_target, tiny_source, objective=objective
        ).run(iterations=3)
        assert all(r.seconds > 0 for r in res.history)
        assert res.runtime_seconds > 0


class TestSourceOnly:
    def test_so_decreases_loss(self, tiny_config, tiny_target, tiny_source, objective):
        so = SourceOptimizer(tiny_config, tiny_target, objective=objective)
        res = so.run(
            init_theta_mask(tiny_target, tiny_config),
            init_theta_source(tiny_source, tiny_config),
            iterations=15,
        )
        assert res.final_loss <= res.losses[0]
        assert all(r.phase == "so" for r in res.history)

    def test_so_leaves_mask_untouched(self, tiny_config, tiny_target, tiny_source, objective):
        tm = init_theta_mask(tiny_target, tiny_config)
        so = SourceOptimizer(tiny_config, tiny_target, objective=objective)
        res = so.run(tm, init_theta_source(tiny_source, tiny_config), iterations=3)
        np.testing.assert_array_equal(res.theta_m, tm)


class TestAMSMO:
    def test_phases_alternate(self, tiny_config, tiny_target, tiny_source):
        res = AMSMO(
            tiny_config, tiny_target, rounds=2, so_steps=3, mo_steps=4
        ).run(tiny_source)
        phases = [r.phase for r in res.history]
        assert phases == (["so"] * 3 + ["mo"] * 4) * 2

    def test_loss_decreases(self, tiny_config, tiny_target, tiny_source):
        res = AMSMO(
            tiny_config, tiny_target, rounds=2, so_steps=4, mo_steps=6
        ).run(tiny_source)
        assert res.final_loss < res.losses[0]

    def test_hybrid_mode_runs_and_tracks_tcc_time(
        self, tiny_config, tiny_target, tiny_source
    ):
        res = AMSMO(
            tiny_config,
            tiny_target,
            mode="abbe-hopkins",
            rounds=2,
            so_steps=2,
            mo_steps=3,
            num_kernels=8,
        ).run(tiny_source)
        assert res.method == "AM-SMO(Abbe-Hopkins)"
        assert res.extra["tcc_seconds"] > 0
        assert res.final_loss < res.losses[0]

    def test_invalid_mode(self, tiny_config, tiny_target):
        with pytest.raises(ValueError):
            AMSMO(tiny_config, tiny_target, mode="hopkins-hopkins")


class TestBiSMO:
    @pytest.mark.parametrize("method", ["fd", "nmn", "cg"])
    def test_all_variants_decrease_loss(
        self, method, tiny_config, tiny_target, tiny_source, objective
    ):
        solver = BiSMO(
            tiny_config,
            tiny_target,
            method=method,
            unroll_steps=2,
            terms=3,
            damping=1.0 if method == "cg" else 0.0,
            objective=objective,
        )
        res = solver.run(tiny_source, iterations=12)
        assert res.final_loss < res.losses[0]
        assert res.method == f"BiSMO-{method.upper()}"
        assert res.theta_j is not None

    def test_unknown_method(self, tiny_config, tiny_target):
        with pytest.raises(KeyError):
            BiSMO(tiny_config, tiny_target, method="newton")

    def test_source_actually_moves(self, tiny_config, tiny_target, tiny_source, objective):
        solver = BiSMO(tiny_config, tiny_target, method="fd", objective=objective)
        res = solver.run(tiny_source, iterations=5)
        tj0 = init_theta_source(tiny_source, tiny_config)
        assert np.abs(res.theta_j - tj0).max() > 0

    def test_fd_hvp_mode_runs(self, tiny_config, tiny_target, tiny_source, objective):
        solver = BiSMO(
            tiny_config, tiny_target, method="nmn", terms=2,
            hvp_mode="fd", objective=objective,
        )
        res = solver.run(tiny_source, iterations=4)
        assert np.all(np.isfinite(res.losses))

    def test_phase_label(self, tiny_config, tiny_target, tiny_source, objective):
        res = BiSMO(tiny_config, tiny_target, method="fd", objective=objective).run(
            tiny_source, iterations=3
        )
        assert all(r.phase == "bilevel" for r in res.history)


class TestSMOResult:
    def test_log_losses(self):
        from repro.smo import IterationRecord

        res = SMOResult(
            method="x",
            theta_m=np.zeros((2, 2)),
            theta_j=None,
            history=[IterationRecord(0, 100.0, 0.1), IterationRecord(1, 10.0, 0.1)],
        )
        np.testing.assert_allclose(res.log_losses(), [2.0, 1.0])
        assert res.best_loss == 10.0
        assert res.final_loss == 10.0

    def test_empty_history_raises(self):
        res = SMOResult(method="x", theta_m=np.zeros(1), theta_j=None)
        with pytest.raises(ValueError):
            _ = res.final_loss
