"""Concurrency stress tests for the condition-axis fan-out.

Two families of guarantee:

* **Cache safety** — many threads racing the optics cache and the
  engines' per-condition memos build each entry exactly once
  (single-flight), every thread observes the same shared object, and
  nothing is orphaned or duplicated.
* **Bitwise determinism** — ``incoherent_image_stack`` forward and VJP
  produce byte-identical results at 1 vs N condition workers (private
  per-stack buffers + fixed-order reductions), for real and complex
  (aberrated-corner) stacks at B=1 and B=3.

Marked ``thread_stress``: CI runs the suite in its own serialized step
so the deliberate oversubscription doesn't skew timing-sensitive tests.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.optics import AbbeImaging, HopkinsImaging, SourceGrid, cache, fftlib

pytestmark = pytest.mark.thread_stress

N_THREADS = 8
CONDITIONS = [0.0, 40.0, 80.0]  # nominal (real stack) + two complex corners


@pytest.fixture(autouse=True)
def _fresh_state():
    """Cold cache and default threading policy around every test."""
    cache.clear()
    with fftlib.use(
        backend="auto",
        workers=0,
        precision="double",
        chunk=16,
        condition_workers=0,
        budget=0,
    ):
        yield
    cache.clear()


def _fan_out(worker, n_threads: int = N_THREADS):
    """Run ``worker()`` on N threads released simultaneously."""
    barrier = threading.Barrier(n_threads)

    def run():
        barrier.wait()
        return worker()

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(run) for _ in range(n_threads)]
        return [f.result() for f in futures]


class TestCacheStress:
    def test_concurrent_pupil_stack_builds_once(self, tiny_config):
        """Single-flight: N racing threads -> one build per condition."""

        def worker():
            return [cache.pupil_stack(tiny_config, c) for c in CONDITIONS]

        results = _fan_out(worker)
        base = results[0]
        for res in results[1:]:
            for (t1, _), (t2, _) in zip(base, res):
                assert t1 is t2  # every thread holds the shared tensor
        stats = cache.stats()["pupil_stack"]
        assert stats["misses"] == len(CONDITIONS)
        assert stats["hits"] == N_THREADS * len(CONDITIONS) - len(CONDITIONS)
        # no duplicate or orphaned entries, no leaked in-flight markers
        assert len(cache._CACHES["pupil_stack"]) == len(CONDITIONS)
        assert not cache._BUILDING

    def test_concurrent_conj_pairs_builds_once(self, tiny_config):
        def worker():
            return [cache.conj_pairs(tiny_config, c) for c in CONDITIONS]

        _fan_out(worker)
        stats = cache.stats()["conj_pairs"]
        assert stats["misses"] == len(CONDITIONS)
        assert len(cache._CACHES["conj_pairs"]) == len(CONDITIONS)
        assert not cache._BUILDING

    def test_concurrent_abbe_condition_stacks_memo(self, tiny_config):
        """The custom-grid memo path: one insert per condition key."""
        grid = SourceGrid.from_config(tiny_config)
        engine = AbbeImaging(tiny_config, source_grid=grid)

        def worker():
            return engine.condition_stacks(CONDITIONS)

        results = _fan_out(worker)
        base = results[0]
        for res in results[1:]:
            for (t1, _), (t2, _) in zip(base, res):
                assert t1 is t2  # first-build-wins entry shared by all
        # nominal entry + one per non-nominal condition, nothing extra
        assert len(engine._condition_memo) <= len(CONDITIONS) + 1

    def test_concurrent_hopkins_condition_kernels_memo(
        self, tiny_config, tiny_source
    ):
        engine = HopkinsImaging(tiny_config, tiny_source, num_kernels=6)

        def worker():
            return engine.condition_kernels(CONDITIONS)

        results = _fan_out(worker)
        base = results[0]
        for res in results[1:]:
            for t1, t2 in zip(base, res):
                assert t1 is t2
        assert len(engine._condition_memo) <= len(CONDITIONS) + 1


class TestBitwiseParity:
    """1 vs N condition workers must agree to the last bit."""

    def _run_case(self, cfg, batch, rng):
        stacks = [cache.pupil_stack(cfg, c)[0] for c in CONDITIONS]
        pairs = [cache.conj_pairs(cfg, c) for c in CONDITIONS]
        assert np.isrealobj(stacks[0].data)  # nominal: real stack
        assert np.iscomplexobj(stacks[1].data)  # corners: complex stacks
        n = cfg.mask_size
        mask_data = rng.random((batch, n, n))
        weights = rng.random(stacks[0].shape[0])

        def evaluate():
            mask = ad.Tensor(mask_data.copy(), requires_grad=True)
            w = ad.Tensor(weights.copy(), requires_grad=True)
            out = F.incoherent_image_stack(mask, stacks, w, conj_pairs=pairs)
            loss = F.sum(F.power(out, 2.0))
            gm, gw = ad.grad(loss, [mask, w])
            return out.data.copy(), gm.data.copy(), gw.data.copy()

        with fftlib.use(condition_workers=1):
            serial = evaluate()
        with fftlib.use(condition_workers=4, budget=4):
            assert fftlib.effective_condition_workers() == 4
            fanned = evaluate()
        for s, f in zip(serial, fanned):
            assert np.array_equal(s, f)

    @pytest.mark.parametrize("batch", [1, 3])
    def test_forward_vjp_bitwise(self, tiny_config, batch, rng):
        self._run_case(tiny_config, batch, rng)

    def test_fast_paths_bitwise(self, tiny_config, tiny_source, tiny_target):
        """Graph-free engine fan-outs match their serial runs exactly."""
        abbe = AbbeImaging(tiny_config)
        hop = HopkinsImaging(tiny_config, tiny_source, num_kernels=6)
        with fftlib.use(condition_workers=1):
            ref_a = abbe.aerial_conditions_fast(
                tiny_target, tiny_source, CONDITIONS
            )
            ref_h = hop.aerial_conditions_fast(
                tiny_target, conditions=CONDITIONS
            )
        with fftlib.use(condition_workers=4, budget=4):
            fan_a = abbe.aerial_conditions_fast(
                tiny_target, tiny_source, CONDITIONS
            )
            fan_h = hop.aerial_conditions_fast(
                tiny_target, conditions=CONDITIONS
            )
        assert np.array_equal(ref_a, fan_a)
        assert np.array_equal(ref_h, fan_h)

    def test_concurrent_fast_forward_consistent(
        self, tiny_config, tiny_source, tiny_target
    ):
        """Many simultaneous fan-outs on one shared engine agree."""
        engine = AbbeImaging(tiny_config)
        ref = engine.aerial_conditions_fast(
            tiny_target, tiny_source, CONDITIONS
        )

        def worker():
            return engine.aerial_conditions_fast(
                tiny_target, tiny_source, CONDITIONS
            )

        for out in _fan_out(worker):
            assert np.array_equal(ref, out)
