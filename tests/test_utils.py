"""Tests for timing and seeding utilities."""

import time

import numpy as np
import pytest

from repro.utils import Timer, seeded_rng, timed


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        with t:
            time.sleep(0.01)
        assert t.count == 2
        assert t.elapsed >= 0.02
        assert t.mean == pytest.approx(t.elapsed / 2)

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.count == 0

    def test_mean_empty(self):
        assert Timer().mean == 0.0

    def test_timed(self):
        result, seconds = timed(lambda: 42)
        assert result == 42
        assert seconds >= 0


class TestSeededRng:
    def test_deterministic(self):
        a = seeded_rng("experiment", 1).random(4)
        b = seeded_rng("experiment", 1).random(4)
        np.testing.assert_array_equal(a, b)

    def test_different_keys_differ(self):
        a = seeded_rng("experiment", 1).random(4)
        b = seeded_rng("experiment", 2).random(4)
        assert not np.array_equal(a, b)

    def test_string_hash_stable(self):
        """Known value locks the FNV hash against accidental change."""
        a = seeded_rng("abc").integers(0, 1_000_000)
        b = seeded_rng("abc").integers(0, 1_000_000)
        assert a == b

    def test_mixed_keys(self):
        rng = seeded_rng("ds", 3, "clip", 7)
        assert rng.random() == seeded_rng("ds", 3, "clip", 7).random()
