"""Zernike aberration subsystem: polynomial math (orthogonality,
parity), the PupilAberration spec (canonicalization, Z4-vs-defocus
bitwise parity, cache identity), conj-pair opt-out for odd terms,
gradients through an aberrated ``incoherent_image_stack``, the Hopkins
arbitrary-D phase identity, per-corner resist calibration, and the
adaptive minimax corner-weight ascent."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

import repro.autodiff as ad
from repro.autodiff import functional as F
from repro.autodiff.grad import gradcheck
from repro.optics import (
    AbbeImaging,
    HopkinsImaging,
    OpticalConfig,
    ProcessCorner,
    ProcessWindow,
    PupilAberration,
    ZERNIKE_TERMS,
    cache,
    defocus_phase,
    defocus_to_wavefront_nm,
    fftlib,
    parse_aberration_spec,
    term_parity,
    wavefront_to_defocus_nm,
    zernike_polynomial,
)
from repro.smo import (
    AbbeMO,
    AdaptiveCornerWeights,
    ProcessWindowSMOObjective,
    adaptive_corner_update,
    dose_resist,
    init_theta_mask,
    init_theta_source,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    cache.clear()
    yield
    cache.clear()


# ----------------------------------------------------------------------
# polynomial math
# ----------------------------------------------------------------------
class TestZernikePolynomials:
    def test_orthonormal_on_unit_disk(self):
        """Noll normalization: <Z_i Z_j> over the disk == delta_ij.

        Polar-grid quadrature (the rho factor is the Jacobian); the
        tolerance absorbs the grid discretization error.
        """
        nr, nt = 400, 720
        r = (np.arange(nr) + 0.5) / nr
        t = (np.arange(nt) + 0.5) * 2.0 * np.pi / nt
        rr, tt = np.meshgrid(r, t, indexing="ij")
        area = (1.0 / nr) * (2.0 * np.pi / nt)
        vals = {k: zernike_polynomial(k, rr, tt) for k in ZERNIKE_TERMS}
        for i, ki in enumerate(ZERNIKE_TERMS):
            for kj in ZERNIKE_TERMS[i:]:
                inner = (vals[ki] * vals[kj] * rr).sum() * area / np.pi
                expected = 1.0 if ki == kj else 0.0
                assert abs(inner - expected) < 5e-3, (ki, kj, inner)

    def test_known_closed_forms(self):
        rho = np.linspace(0.0, 1.0, 7)
        theta = np.full_like(rho, 0.3)
        np.testing.assert_allclose(
            zernike_polynomial("Z4", rho, theta),
            np.sqrt(3.0) * (2.0 * rho**2 - 1.0),
            atol=1e-13,
        )
        np.testing.assert_allclose(
            zernike_polynomial("Z7", rho, theta),
            np.sqrt(8.0) * (3.0 * rho**3 - 2.0 * rho) * np.sin(theta),
            atol=1e-13,
        )
        np.testing.assert_allclose(
            zernike_polynomial("Z11", rho, theta),
            np.sqrt(5.0) * (6.0 * rho**4 - 6.0 * rho**2 + 1.0),
            atol=1e-13,
        )

    def test_frequency_parity(self):
        """Z(-f) == parity * Z(f): even for m-even terms, odd for coma/
        trefoil — the property deciding conj-pair survival."""
        rng = np.random.default_rng(3)
        x, y = rng.standard_normal((2, 64))
        rho, theta = np.hypot(x, y), np.arctan2(y, x)
        rho_m, theta_m = np.hypot(-x, -y), np.arctan2(-y, -x)
        for term in ZERNIKE_TERMS:
            direct = zernike_polynomial(term, rho, theta)
            mirrored = zernike_polynomial(term, rho_m, theta_m)
            np.testing.assert_allclose(
                mirrored, term_parity(term) * direct, atol=1e-12
            )
        assert term_parity("Z4") == term_parity("Z5") == term_parity("Z11") == 1
        assert term_parity("Z7") == term_parity("Z9") == -1

    def test_unknown_term_rejected(self):
        with pytest.raises(KeyError):
            zernike_polynomial("Z12", np.zeros(1), np.zeros(1))
        with pytest.raises(KeyError):
            PupilAberration(terms={"Z99": 1.0})

    def test_defocus_wavefront_roundtrip(self, tiny_config):
        z = 80.0
        c4 = defocus_to_wavefront_nm(tiny_config, z)
        assert c4 == pytest.approx(z * tiny_config.na**2 / (4 * np.sqrt(3)))
        assert wavefront_to_defocus_nm(tiny_config, c4) == pytest.approx(z)

    def test_magnitude_compares_in_wavefront_units(self, tiny_config):
        """magnitude_nm(config) converts the Z4 wafer-defocus coefficient
        to RMS wavefront, so nominal-condition ranking is not skewed by
        the unit mismatch (40 nm defocus ~ 10 nm wavefront at NA 1.35 —
        smaller than a 15 nm spherical term, despite the bigger raw
        coefficient)."""
        z4 = PupilAberration(terms={"Z4": 40.0})
        z11 = PupilAberration(terms={"Z11": 15.0})
        assert z4.magnitude_nm() > z11.magnitude_nm()  # raw coefficients
        assert z4.magnitude_nm(tiny_config) == pytest.approx(
            defocus_to_wavefront_nm(tiny_config, 40.0)
        )
        assert z4.magnitude_nm(tiny_config) < z11.magnitude_nm(tiny_config)
        rad_map = np.full((8, 8), 0.5)
        custom = PupilAberration(custom=rad_map)
        assert custom.magnitude_nm(tiny_config) == pytest.approx(
            0.5 * tiny_config.wavelength_nm / (2 * np.pi)
        )


# ----------------------------------------------------------------------
# PupilAberration spec + corner canonicalization
# ----------------------------------------------------------------------
class TestPupilAberration:
    def test_coerce_forms(self, tiny_config):
        n = tiny_config.mask_size
        assert PupilAberration.coerce(None).is_null
        assert PupilAberration.coerce(0.0).is_null
        ab = PupilAberration.coerce(55.0)
        assert ab.is_pure_defocus and ab.defocus_nm == 55.0
        ab2 = PupilAberration.coerce({"Z5": 20.0, "Z4": 10.0})
        assert ab2.terms == (("Z4", 10.0), ("Z5", 20.0))
        raw = np.zeros((n, n))
        ab3 = PupilAberration.coerce(raw)
        assert ab3.custom is not None and not ab3.is_pure_defocus
        with pytest.raises(TypeError):
            PupilAberration.coerce("Z5=20")

    def test_zero_coefficients_drop_out(self):
        assert PupilAberration(terms={"Z5": 0.0}).is_null
        assert PupilAberration(terms={"Z4": 30.0, "Z4": 30.0}).terms == (
            ("Z4", 30.0),
        )
        merged = PupilAberration(terms=(("Z5", 10.0), ("Z5", -10.0)))
        assert merged.is_null

    def test_corner_spellings_are_equal(self):
        c1 = ProcessCorner(defocus_nm=50.0)
        c2 = ProcessCorner(aberrations={"Z4": 50.0})
        assert c1 == c2
        assert hash(c1) == hash(c2)
        assert c1.label == c2.label == "d1/f50nm"
        assert c2.defocus_nm == 50.0  # sugar mirrored back

    def test_bitwise_identical_pupil_stacks(self, tiny_config):
        """The acceptance bar: both spellings compile to one shared,
        bitwise-identical cached pupil stack."""
        c1 = ProcessCorner(defocus_nm=42.0)
        c2 = ProcessCorner(aberrations={"Z4": 42.0})
        s1, _ = cache.pupil_stack(tiny_config, c1.aberrations)
        s2, _ = cache.pupil_stack(tiny_config, c2.aberrations)
        assert s1 is s2  # one cache entry -> trivially bitwise identical
        # and the compiled phase equals the legacy Fresnel factor bitwise
        np.testing.assert_array_equal(
            c2.aberrations.phase(tiny_config), defocus_phase(tiny_config, 42.0)
        )

    def test_phase_is_unit_modulus(self, tiny_config):
        ab = PupilAberration(terms={"Z5": 25.0, "Z7": -15.0, "Z11": 10.0})
        np.testing.assert_allclose(
            np.abs(ab.phase(tiny_config)), 1.0, atol=1e-13
        )

    def test_custom_map_phase(self, tiny_config):
        n = tiny_config.mask_size
        rng = np.random.default_rng(1)
        raw = rng.standard_normal((n, n))
        ab = PupilAberration(custom=raw)
        np.testing.assert_allclose(
            ab.phase(tiny_config), np.exp(1j * raw), atol=1e-14
        )
        # digest-based identity: same pixels == same spec
        assert ab == PupilAberration(custom=raw.copy())
        assert hash(ab) == hash(PupilAberration(custom=raw.copy()))

    def test_pickle_and_hash_stability(self):
        ab = PupilAberration(terms={"Z5": 20.0}, custom=np.eye(8))
        clone = pickle.loads(pickle.dumps(ab))
        assert clone == ab and hash(clone) == hash(ab)
        window = ProcessWindow.from_grid(
            (0.98, 1.02), (0.0,), aberrations=({"Z5": 20.0},)
        )
        wclone = pickle.loads(pickle.dumps(window))
        assert wclone == window and hash(wclone) == hash(window)

    def test_parse_spec(self):
        spec = parse_aberration_spec("Z5=20, Z7=-10,Z5=5")
        assert spec == {"Z5": 25.0, "Z7": -10.0}
        with pytest.raises(ValueError):
            parse_aberration_spec("Z5:20")
        with pytest.raises(ValueError):
            parse_aberration_spec("  ")
        with pytest.raises(KeyError):
            parse_aberration_spec("Z2=5")

    def test_from_grid_rejects_duplicate_conditions(self):
        with pytest.raises(ValueError, match="duplicate process condition"):
            ProcessWindow.from_grid(
                (1.0,), (0.0, 40.0), aberrations=({"Z4": 40.0},)
            )
        with pytest.raises(ValueError, match="duplicate process condition"):
            # a zero-coefficient spec canonicalizes to the nominal corner
            ProcessWindow.from_grid((1.0,), (0.0,), aberrations=({"Z5": 0.0},))

    def test_window_conditions_group_by_spec(self):
        window = ProcessWindow.from_grid(
            (0.98, 1.0, 1.02), (0.0,), aberrations=({"Z5": 20.0}, {"Z7": 10.0})
        )
        assert window.num_corners == 9
        conds = window.conditions()
        assert len(conds) == 3 and conds[0].is_null
        np.testing.assert_array_equal(
            window.condition_index(), [0, 1, 2, 0, 1, 2, 0, 1, 2]
        )
        with pytest.raises(ValueError):
            window.focus_values()
        with pytest.raises(ValueError):
            window.focus_index()


# ----------------------------------------------------------------------
# conj-pair structure under aberrations
# ----------------------------------------------------------------------
class TestAberrationConjPairs:
    def _stack(self, config, spec):
        from repro.optics import SourceGrid, aberrated_pupil_stack

        grid = SourceGrid.from_config(config)
        return aberrated_pupil_stack(config, grid, spec), grid

    def test_even_terms_keep_structural_pairing(self, tiny_config):
        """Astigmatism/spherical phases are even in f, so the frequency-
        reversal identity K_pair(f) == K_s(-f) survives — exactly like
        defocus."""
        from repro.optics import conj_pair_indices, shifted_pupil_stack
        from repro.optics import SourceGrid

        grid = SourceGrid.from_config(tiny_config)
        base, idx = shifted_pupil_stack(tiny_config, grid)
        pairs = conj_pair_indices(base, idx, grid)
        for spec in ({"Z5": 25.0}, {"Z6": 25.0}, {"Z11": 15.0}, {"Z4": 40.0}):
            (stack, _), _ = self._stack(tiny_config, spec)
            np.testing.assert_allclose(
                stack[pairs], fftlib.freq_reverse(stack), atol=1e-13
            )

    def test_odd_terms_break_structural_pairing(self, tiny_config):
        """Coma/trefoil phases are odd: D(-f) = conj(D(f)) != D(f), so
        even the structural reversal fails — the opt-out the issue
        demands."""
        from repro.optics import conj_pair_indices, shifted_pupil_stack
        from repro.optics import SourceGrid

        grid = SourceGrid.from_config(tiny_config)
        base, idx = shifted_pupil_stack(tiny_config, grid)
        pairs = conj_pair_indices(base, idx, grid)
        for spec in ({"Z7": 25.0}, {"Z9": 25.0}):
            (stack, _), _ = self._stack(tiny_config, spec)
            reversed_ = fftlib.freq_reverse(stack)
            assert not np.allclose(stack[pairs], reversed_, atol=1e-10)
            # but the odd phase conjugates under reversal
            np.testing.assert_allclose(
                np.conj(stack[pairs]), reversed_, atol=1e-13
            )

    def test_cached_conj_pairs_opt_out_for_aberrations(self, tiny_config):
        assert cache.conj_pairs(tiny_config) is not None
        for spec in ({"Z5": 25.0}, {"Z7": 25.0}, 60.0):
            assert cache.conj_pairs(tiny_config, spec) is None


# ----------------------------------------------------------------------
# imaging through aberrated stacks
# ----------------------------------------------------------------------
class TestAberratedImaging:
    def test_condition_stacks_accept_mixed_conditions(self, tiny_config):
        engine = AbbeImaging(tiny_config)
        out = engine.condition_stacks((0.0, 55.0, {"Z5": 20.0}))
        assert out[0][1] is not None  # real in-focus stack keeps pairing
        assert out[1][1] is None and np.iscomplexobj(out[1][0].data)
        assert out[2][1] is None and np.iscomplexobj(out[2][0].data)
        # same spec -> same cached stack object
        again = engine.condition_stacks(({"Z5": 20.0},))
        assert again[0][0] is out[2][0]

    def test_aerial_conditions_matches_per_condition_passes(
        self, tiny_config, tiny_source
    ):
        engine = AbbeImaging(tiny_config)
        rng = np.random.default_rng(5)
        mask = rng.random((tiny_config.mask_size,) * 2)
        conditions = (0.0, {"Z5": 25.0}, {"Z7": -18.0, "Z4": 30.0})
        with ad.no_grad():
            stack = engine.aerial_conditions(
                ad.Tensor(mask), ad.Tensor(tiny_source), conditions
            ).data
            per = [
                AbbeImaging(tiny_config, aberration=ab)
                .aerial(ad.Tensor(mask), ad.Tensor(tiny_source))
                .data
                for ab in conditions
            ]
        for fi, ref in enumerate(per):
            np.testing.assert_allclose(stack[fi], ref, atol=1e-12)

    def test_fd_gradcheck_through_aberrated_stack(self, tiny_config):
        """FD gradcheck of mask and source-weight gradients through an
        aberrated ``incoherent_image_stack`` (the issue's acceptance
        test for the autodiff plumbing)."""
        engine = AbbeImaging(tiny_config)
        stacks_pairs = engine.condition_stacks(
            (0.0, {"Z5": 20.0}, {"Z7": 12.0})
        )
        stacks = [s for s, _ in stacks_pairs]
        pairs = [p for _, p in stacks_pairs]
        s = stacks[0].shape[0]
        rng = np.random.default_rng(7)
        m = rng.standard_normal((tiny_config.mask_size,) * 2) * 0.5
        w = rng.random(s) + 0.1

        def loss(mt, wt):
            out = F.incoherent_image_stack(mt, stacks, wt, conj_pairs=pairs)
            return F.sum(F.power(out, 2.0))

        gradcheck(
            loss,
            [ad.Tensor(m), ad.Tensor(w)],
            eps=1e-6,
            rtol=1e-4,
            atol=1e-6,
        )

    def test_hopkins_arbitrary_d_identity_full_rank(
        self, tiny_config, tiny_source
    ):
        """Aberrated full-rank SOCS == aberrated Abbe: the rank-
        preserving TCC phase identity holds for arbitrary unit-modulus D
        (astigmatism + coma here), not just defocus."""
        cfg = tiny_config
        fx, fy = cfg.freq_grid()
        support = int((np.hypot(fx, fy) <= 2 * cfg.cutoff_freq + 1e-15).sum())
        spec = {"Z5": 22.0, "Z7": -14.0}
        hop = HopkinsImaging(cfg, tiny_source, num_kernels=support)
        abbe = AbbeImaging(cfg, aberration=spec)
        rng = np.random.default_rng(9)
        mask = rng.random((cfg.mask_size,) * 2)
        with ad.no_grad():
            hop_stack = hop.aerial_conditions(ad.Tensor(mask), conditions=(spec,)).data
        np.testing.assert_allclose(
            hop_stack[0],
            abbe.aerial_fast(mask, tiny_source),
            atol=1e-10,
        )

    def test_windowed_objective_through_aberrations(self, tiny_config, tiny_source):
        """Fused robust loss over an aberration window matches the
        per-condition reference loop, gradients included."""
        cfg = tiny_config
        rng = np.random.default_rng(11)
        target = (rng.random((cfg.mask_size,) * 2) > 0.6).astype(np.float64)
        window = ProcessWindow.from_grid(
            (0.97, 1.03), (0.0,), aberrations=({"Z5": 20.0}, {"Z7": 12.0})
        )
        pwo = ProcessWindowSMOObjective(cfg, target, window)
        theta_j = init_theta_source(tiny_source, cfg)
        theta_m = init_theta_mask(target, cfg)
        outs = []
        for fn in (pwo.loss, pwo.loss_reference):
            tj = ad.Tensor(theta_j, requires_grad=True)
            tm = ad.Tensor(theta_m, requires_grad=True)
            loss = fn(tj, tm)
            gj, gm = ad.grad(loss, [tj, tm])
            outs.append((float(loss.data), gj.data, gm.data))
        np.testing.assert_allclose(outs[0][0], outs[1][0], rtol=1e-10)
        np.testing.assert_allclose(outs[0][1], outs[1][1], atol=1e-12)
        np.testing.assert_allclose(outs[0][2], outs[1][2], atol=1e-12)

    def test_warmup_prebuilds_aberration_conditions(self, tiny_config):
        window = ProcessWindow.from_grid(
            (1.0,), (0.0,), aberrations=({"Z5": 20.0},)
        )
        cache.warmup(tiny_config, process_window=window)
        cache.reset_stats()
        for ab in window.conditions():
            cache.pupil_stack(tiny_config, ab)
        stats = cache.stats()
        assert stats["pupil_stack"]["misses"] == 0
        assert stats["pupil_stack"]["hits"] == 2


# ----------------------------------------------------------------------
# per-corner resist calibration
# ----------------------------------------------------------------------
class TestPerCornerThreshold:
    def test_dose_resist_override(self, tiny_config):
        aerial = ad.Tensor(np.linspace(0.0, 1.0, 25).reshape(5, 5))
        with ad.no_grad():
            base = dose_resist(aerial, tiny_config, 1.0).data
            lower = dose_resist(aerial, tiny_config, 1.0, 0.1).data
        assert (lower >= base).all() and (lower > base).any()

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ProcessCorner(intensity_threshold=-0.1)

    def test_window_thresholds_resolved(self, tiny_config):
        window = ProcessWindow(
            corners=(
                ProcessCorner(1.0, 0.0),
                ProcessCorner(1.02, 0.0, intensity_threshold=0.3),
            )
        )
        np.testing.assert_allclose(
            window.intensity_thresholds(tiny_config),
            [tiny_config.intensity_threshold, 0.3],
        )

    def test_calibrated_corner_changes_images_and_loss(
        self, tiny_config, tiny_source
    ):
        cfg = tiny_config
        rng = np.random.default_rng(13)
        target = (rng.random((cfg.mask_size,) * 2) > 0.6).astype(np.float64)
        theta_j = init_theta_source(tiny_source, cfg)
        theta_m = init_theta_mask(target, cfg)
        shared = ProcessWindow.from_grid((1.0, 1.02))
        calibrated = ProcessWindow(
            corners=(
                ProcessCorner(1.0, 0.0),
                ProcessCorner(1.02, 0.0, intensity_threshold=0.3),
            )
        )
        obj_a = ProcessWindowSMOObjective(cfg, target, shared)
        obj_b = ProcessWindowSMOObjective(cfg, target, calibrated)
        with ad.no_grad():
            la = float(obj_a.loss(ad.Tensor(theta_j), ad.Tensor(theta_m)).data)
            lb = float(obj_b.loss(ad.Tensor(theta_j), ad.Tensor(theta_m)).data)
        assert la != lb
        # nominal corner identical, calibrated corner differs
        ra = obj_a.images(theta_j, theta_m)["corner_resists"]
        rb = obj_b.images(theta_j, theta_m)["corner_resists"]
        np.testing.assert_allclose(ra[0], rb[0], atol=1e-14)
        assert not np.allclose(ra[1], rb[1])

    def test_harness_report_carries_thresholds(
        self, tiny_config, tiny_rects, tiny_source
    ):
        from repro.harness import RunSettings, run_process_window
        from repro.layouts import Clip

        cfg = tiny_config
        clip = Clip(
            name="unit",
            rects=tuple(tiny_rects),
            cd_nm=40,
            tile_nm=int(cfg.tile_nm),
        )
        window = ProcessWindow(
            corners=(
                ProcessCorner(1.0, 0.0),
                ProcessCorner(1.02, 0.0, intensity_threshold=0.3),
            )
        )
        settings = RunSettings(config=cfg, iterations=2, process_window=window)
        (rec,) = run_process_window(["Abbe-MO"], [clip], settings, "unit-ds")
        assert rec.corner_thresholds == (cfg.intensity_threshold, 0.3)


# ----------------------------------------------------------------------
# adaptive minimax corner weighting
# ----------------------------------------------------------------------
class TestAdaptiveCornerWeights:
    def test_converges_to_worst_corner(self):
        """The issue's toy 2-corner problem: with fixed losses the EG
        ascent concentrates the simplex mass on the worst corner."""
        window = ProcessWindow.from_grid((1.0,), (0.0, 60.0))
        acw = AdaptiveCornerWeights(window, rate=1.0, floor=1e-3)
        losses = np.array([1.0, 10.0])
        trajectory = [acw.weights.copy()]
        for _ in range(40):
            trajectory.append(acw.update(losses).copy())
        final = trajectory[-1]
        assert final[1] / final.sum() > 0.99
        # total weight mass conserved throughout
        for w in trajectory:
            assert w.sum() == pytest.approx(window.weights.sum())
        # the floor keeps the easy corner alive
        assert final[0] > 0.0

    def test_shared_instance_requires_adaptive_mode(
        self, tiny_config, tiny_source, tiny_target
    ):
        from repro.smo import HopkinsMOObjective

        window = ProcessWindow.from_grid((1.0,), (0.0, 60.0))
        acw = AdaptiveCornerWeights(window)
        with pytest.raises(ValueError, match="adaptive"):
            HopkinsMOObjective(
                tiny_config,
                tiny_target,
                tiny_source,
                window=window,
                robust="sum",
                adaptive_weights=acw,
            )

    def test_cli_rejects_bad_aberration_spec(self, capsys):
        from repro.harness.cli import build_parser

        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["pwindow", "--pw-aberrations", "Z3=5"])
        assert "unknown Zernike term" in capsys.readouterr().err
        args = parser.parse_args(["pwindow", "--pw-aberrations", "Z5=20,Z7=-10"])
        assert args.pw_aberrations == [{"Z5": 20.0, "Z7": -10.0}]

    def test_bismo_fd_mode_ascends_on_iterate_losses(
        self, tiny_config, tiny_source
    ):
        """FD-mode hypergradients re-evaluate the objective at perturbed
        points; the EG ascent must still use the corner losses of the
        iterate's own evaluation (captured before the FD probes)."""
        from repro.smo import BiSMO

        cfg = tiny_config
        rng = np.random.default_rng(29)
        target = (rng.random((cfg.mask_size,) * 2) > 0.6).astype(np.float64)
        window = ProcessWindow.from_grid((1.0,), (0.0, 80.0))
        seen = []
        solver = BiSMO(
            cfg,
            target,
            method="nmn",
            unroll_steps=1,
            terms=2,
            hvp_mode="fd",
            process_window=window,
            robust="adaptive",
        )
        adaptive = solver.objective.adaptive_weights
        orig_update = adaptive.update

        def spy(losses):
            seen.append((adaptive.weights.copy(), np.asarray(losses).copy()))
            return orig_update(losses)

        adaptive.update = spy
        result = solver.run(tiny_source, iterations=2)
        assert len(seen) == 2
        assert result.final_corner_weights is not None
        # Each ascent input must be the corner split of the iterate's
        # own recorded loss under the weights live at that evaluation —
        # an FD-perturbed matrix would break this identity.
        for (weights, losses), rec in zip(seen, result.history):
            np.testing.assert_allclose(weights @ losses, rec.loss, rtol=1e-9)

    def test_milt_rejects_custom_maps_on_coarse_levels(
        self, tiny_config, tiny_source, tiny_target
    ):
        from repro.baselines import MultiLevelILT

        n = tiny_config.mask_size
        window = ProcessWindow.from_grid(
            (1.0,), (0.0,), aberrations=(np.zeros((n, n)),)
        )
        with pytest.raises(ValueError, match="levels=1"):
            MultiLevelILT(
                tiny_config,
                tiny_target,
                tiny_source,
                levels=2,
                num_kernels=4,
                process_window=window,
            )
        # single-level runs keep working with raw maps
        MultiLevelILT(
            tiny_config,
            tiny_target,
            tiny_source,
            levels=1,
            num_kernels=4,
            process_window=window,
        )

    def test_update_validation_and_degenerate_losses(self):
        window = ProcessWindow.from_grid((1.0,), (0.0, 60.0))
        acw = AdaptiveCornerWeights(window)
        with pytest.raises(ValueError):
            acw.update(np.ones(3))
        before = acw.weights.copy()
        acw.update(np.zeros(2))  # nothing to ascend
        np.testing.assert_allclose(acw.weights, before)
        with pytest.raises(ValueError):
            AdaptiveCornerWeights(window, rate=0.0)
        with pytest.raises(ValueError):
            AdaptiveCornerWeights(window, floor=1.0)

    def test_adaptive_objective_tracks_live_weights(
        self, tiny_config, tiny_source
    ):
        cfg = tiny_config
        rng = np.random.default_rng(17)
        target = (rng.random((cfg.mask_size,) * 2) > 0.6).astype(np.float64)
        window = ProcessWindow.from_grid((1.0,), (0.0, 80.0))
        pwo = ProcessWindowSMOObjective(cfg, target, window, robust="adaptive")
        theta_j = init_theta_source(tiny_source, cfg)
        theta_m = init_theta_mask(target, cfg)
        with ad.no_grad():
            l0 = float(pwo.loss(ad.Tensor(theta_j), ad.Tensor(theta_m)).data)
        matrix = pwo.last_corner_losses.copy()
        np.testing.assert_allclose(
            l0, float(pwo.adaptive_weights.weights @ matrix.sum(axis=1)),
            rtol=1e-12,
        )
        weights = adaptive_corner_update(pwo)
        assert weights is not None and weights.shape == (2,)
        # after the ascent the loss re-weights toward the worse corner
        with ad.no_grad():
            l1 = float(pwo.loss(ad.Tensor(theta_j), ad.Tensor(theta_m)).data)
        np.testing.assert_allclose(
            l1, float(weights @ pwo.last_corner_losses.sum(axis=1)), rtol=1e-12
        )

    def test_abbemo_adaptive_records_weight_trajectory(
        self, tiny_config, tiny_source
    ):
        cfg = tiny_config
        rng = np.random.default_rng(19)
        target = (rng.random((cfg.mask_size,) * 2) > 0.6).astype(np.float64)
        window = ProcessWindow.from_grid((0.98, 1.02), (0.0, 80.0))
        solver = AbbeMO(
            cfg, target, tiny_source, process_window=window, robust="adaptive"
        )
        result = solver.run(iterations=4)
        traj = result.corner_weight_matrix()
        assert traj.shape == (4, window.num_corners)
        np.testing.assert_allclose(
            traj.sum(axis=1), window.weights.sum(), rtol=1e-12
        )
        assert result.final_corner_weights.shape == (window.num_corners,)

    def test_adaptive_beats_static_sum_on_worst_corner(
        self, tiny_config, tiny_source
    ):
        """The soft-minimax promise on a toy 2-corner problem: when the
        static weights underweight the hard corner (the realistic
        gamma-on-nominal setting), the adaptive ascent shifts mass to it
        and strictly reduces the worst-corner loss under the same
        iteration budget, driving the corners toward equalization."""
        cfg = tiny_config
        rng = np.random.default_rng(23)
        target = (rng.random((cfg.mask_size,) * 2) > 0.6).astype(np.float64)
        # Nominal-heavy static weights, one genuinely hard focus corner.
        window = ProcessWindow.from_grid(
            (1.0,), (0.0, 150.0), weights=(10.0, 1.0)
        )
        results, final_w = {}, None
        for robust in ("sum", "adaptive"):
            solver = AbbeMO(
                cfg,
                target,
                tiny_source,
                process_window=window,
                robust=robust,
                robust_tau=1.0,
            )
            result = solver.run(iterations=16)
            matrix = solver.objective.corner_loss_matrix(
                solver._theta_j_fixed.data, result.theta_m
            )
            results[robust] = matrix.sum(axis=1)
            if robust == "adaptive":
                final_w = result.final_corner_weights
        assert results["adaptive"].max() < results["sum"].max()
        # the ascent moved weight mass onto the historically worst corner
        assert final_w[1] > window.weights[1]
